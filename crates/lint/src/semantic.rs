//! The call-graph / AST driven rules, written as declarative queries
//! against the inferred effect table ([`crate::effects`]).
//!
//! These run over the whole parsed workspace at once (unlike the per-file
//! lexical rules in [`crate::rules`]). The effect-query rules come in two
//! finding shapes, which is what keeps suppression site-granular:
//!
//! * **source-site** findings — an *unsanctioned* intrinsic site (a stray
//!   `println!`, `.elapsed()`, `spawn`) in a fn reachable from the rule's
//!   kernel entry points, reported at the site itself with the minimal
//!   entry→site witness chain;
//! * **boundary** findings — a call from a kernel fn into a callee whose
//!   effect is *purely sanctioned* (e.g. `Stopwatch::start`, whose
//!   `Instant::now()` lives legitimately in stats.rs), reported at the
//!   kernel call line: the sanctioned site is fine where it is, the kernel
//!   reaching it is the violation.
//!
//! The exhaustive-match rule cross-references `match` arms against the
//! workspace's own enum declarations. The meta rule `stale-suppression`
//! lives in the engine because it is defined by what the other rules did
//! (not) do.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::effects::{Effect, EffectTable};
use crate::parser::ParsedFile;
use crate::rules::{self, Violation};

/// Enums whose dispatch sites must stay exhaustive: adding a variant has to
/// fail lint at every `match` until the new case is handled explicitly.
pub const TARGET_ENUMS: &[&str] = &["CountingStrategy", "Parallelism", "Algorithm"];

/// Rule: transitive-panic-reachability.
///
/// An effect query: entry points are all non-test fns defined in kernel
/// files; every unsanctioned intrinsic `Panics` site in a *non*-kernel fn
/// reachable from an entry point is flagged with its minimal witness chain
/// (panic sites inside kernel files themselves are the lexical rule's
/// domain — reporting them here too would double-count every finding).
/// `absorb(path, line)` is consulted per panic site; returning `true`
/// (a valid suppression covers the site) silences it.
pub fn transitive_panic(
    files: &[ParsedFile],
    graph: &CallGraph,
    fx: &EffectTable,
    mut absorb: impl FnMut(&str, u32) -> bool,
) -> Vec<Violation> {
    let entries = graph.nodes_where(|fi, _| rules::is_kernel_path(&files[fi].path));
    let parents = graph.reachable_with_parents(&entries);
    let mut out = Vec::new();
    for site in fx.sites.iter().filter(|s| s.effect == Effect::Panics) {
        if !parents.contains_key(&site.node) {
            continue;
        }
        let (fi, gi) = graph.nodes[site.node];
        let file = &files[fi];
        if rules::is_kernel_path(&file.path) {
            continue;
        }
        if absorb(&file.path, site.line) {
            continue;
        }
        let chain = graph.chain(files, &parents, site.node);
        out.push(Violation {
            path: file.path.clone(),
            line: site.line,
            rule: rules::TRANSITIVE_PANIC_REACHABILITY,
            message: format!(
                "{} in `{}` is reachable from kernel code ({chain}); \
                 restructure, or suppress at this site with a justification",
                site.what, file.fns[gi].name
            ),
            chain: Some(chain.clone()),
        });
    }
    out
}

/// One effect-purity rule: kernels in `in_scope` must not reach `effect`.
pub struct EffectRule {
    /// Rule name (a `rules::` constant).
    pub rule: &'static str,
    /// The lattice element the rule queries.
    pub effect: Effect,
    /// Human noun for messages, e.g. "I/O".
    pub noun: &'static str,
    /// Which files' fns are the rule's entry points.
    pub in_scope: fn(&str) -> bool,
}

/// The three kernel-purity effect rules.
pub const EFFECT_RULES: &[EffectRule] = &[
    EffectRule {
        rule: rules::NO_IO_IN_KERNELS,
        effect: Effect::DoesIo,
        noun: "I/O",
        in_scope: rules::is_compute_kernel_path,
    },
    EffectRule {
        rule: rules::NO_WALL_CLOCK_IN_KERNELS,
        effect: Effect::WallClock,
        noun: "wall-clock time",
        in_scope: rules::is_kernel_path,
    },
    EffectRule {
        rule: rules::NO_SPAWN_IN_KERNELS,
        effect: Effect::Spawns,
        noun: "thread spawns",
        in_scope: rules::is_kernel_path,
    },
];

/// Rules: no-io-in-kernels / no-wall-clock-in-kernels / no-spawn-in-kernels.
///
/// For each rule: source-site findings at unsanctioned intrinsic sites
/// reachable from the rule's kernel entries, then boundary findings at
/// kernel call sites whose callee carries the effect purely from sanctioned
/// sites (skipped when the same line already got a source-site finding —
/// `watch.elapsed()` is both an intrinsic site and a resolved call).
pub fn effect_purity(files: &[ParsedFile], graph: &CallGraph, fx: &EffectTable) -> Vec<Violation> {
    let mut out = Vec::new();
    for spec in EFFECT_RULES {
        let entries = graph.nodes_where(|fi, _| (spec.in_scope)(&files[fi].path));
        let parents = graph.reachable_with_parents(&entries);
        let mut site_lines: BTreeSet<(usize, u32)> = BTreeSet::new();
        for site in fx
            .sites
            .iter()
            .filter(|s| s.effect == spec.effect && !s.sanctioned)
        {
            if !parents.contains_key(&site.node) {
                continue;
            }
            let (fi, gi) = graph.nodes[site.node];
            let chain = graph.chain(files, &parents, site.node);
            site_lines.insert((fi, site.line));
            out.push(Violation {
                path: files[fi].path.clone(),
                line: site.line,
                rule: spec.rule,
                message: format!(
                    "{} in `{}` is reachable from kernel code ({chain}); kernels \
                     must stay free of {} — restructure, or suppress at this \
                     site with a justification",
                    site.what, files[fi].fns[gi].name, spec.noun
                ),
                chain: Some(chain),
            });
        }
        for &n in &entries {
            let (fi, gi) = graph.nodes[n];
            let f = &files[fi].fns[gi];
            for (ci, c) in f.calls.iter().enumerate() {
                if site_lines.contains(&(fi, c.line)) {
                    continue;
                }
                for &g in graph.resolved_targets(n, ci) {
                    let (gfi, _) = graph.nodes[g];
                    if (spec.in_scope)(&files[gfi].path)
                        || !fx.inferred[g].contains(spec.effect)
                        || fx.inferred_unsanctioned[g].contains(spec.effect)
                    {
                        continue;
                    }
                    let witness = fx
                        .witness(files, graph, g, spec.effect)
                        .unwrap_or_else(|| files[gfi].fns[graph.nodes[g].1].name.clone());
                    let chain = format!("{} -> {witness}", f.name);
                    out.push(Violation {
                        path: files[fi].path.clone(),
                        line: c.line,
                        rule: spec.rule,
                        message: format!(
                            "call to `{}` in kernel fn `{}` reaches {} ({chain}); \
                             restructure, or suppress at this call site with a \
                             justification",
                            c.name, f.name, spec.noun
                        ),
                        chain: Some(chain),
                    });
                    break;
                }
            }
        }
    }
    out
}

/// Rule: no-alloc-in-hot-loop (intraprocedural half).
///
/// Allocation sites whose smallest enclosing loop scope (lexical loop or
/// closure body) is innermost, in non-test fns of kernel files.
pub fn no_alloc_in_hot_loop(files: &[ParsedFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        if !rules::is_kernel_path(&file.path) {
            continue;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            for a in &f.allocs {
                if !a.in_innermost_loop {
                    continue;
                }
                out.push(Violation {
                    path: file.path.clone(),
                    line: a.line,
                    rule: rules::NO_ALLOC_IN_HOT_LOOP,
                    message: format!(
                        "{} in the innermost loop of kernel fn `{}`; hoist into a \
                         reusable scratch buffer, or suppress with a justification",
                        a.what, f.name
                    ),
                    chain: None,
                });
            }
        }
    }
    out
}

/// Rule: no-alloc-in-hot-loop (interprocedural half).
///
/// A path/free-fn call in the innermost loop of a kernel fn whose resolved
/// callee carries the `Allocates` effect fires at the call line. Method
/// calls are exempt: name-based method resolution is too ambiguous to pin
/// an allocation on (`.count()` could be an iterator reduction or a
/// counting-state method), and the intraprocedural half already covers the
/// allocating method names directly.
pub fn alloc_calls_in_hot_loop(
    files: &[ParsedFile],
    graph: &CallGraph,
    fx: &EffectTable,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (n, &(fi, gi)) in graph.nodes.iter().enumerate() {
        if !rules::is_kernel_path(&files[fi].path) {
            continue;
        }
        let f = &files[fi].fns[gi];
        for (ci, c) in f.calls.iter().enumerate() {
            if !c.in_innermost_loop || c.is_method {
                continue;
            }
            for &g in graph.resolved_targets(n, ci) {
                if g == n || !fx.inferred[g].contains(Effect::Allocates) {
                    continue;
                }
                let witness = fx
                    .witness(files, graph, g, Effect::Allocates)
                    .unwrap_or_else(|| files[graph.nodes[g].0].fns[graph.nodes[g].1].name.clone());
                let chain = format!("{} -> {witness}", f.name);
                out.push(Violation {
                    path: files[fi].path.clone(),
                    line: c.line,
                    rule: rules::NO_ALLOC_IN_HOT_LOOP,
                    message: format!(
                        "`{}()` called in the innermost loop of kernel fn `{}` may \
                         allocate ({chain}); hoist the call or its buffers, or \
                         suppress with a justification",
                        c.name, f.name
                    ),
                    chain: Some(chain),
                });
                break;
            }
        }
    }
    out
}

/// Rule: exhaustive-strategy-match.
///
/// A `match` is *targeted* when any arm pattern's leading path starts with
/// one of [`TARGET_ENUMS`] (or `Self` inside an impl of one). A targeted
/// match must name every variant of that enum and must not have a
/// wildcard/binding catch-all arm.
pub fn exhaustive_strategy_match(files: &[ParsedFile]) -> Vec<Violation> {
    // Variant lists come from the workspace's own enum declarations, so the
    // rule stays self-contained (fixtures declare their own mini-enums).
    let mut variants: BTreeMap<&str, &[String]> = BTreeMap::new();
    for file in files {
        for e in &file.enums {
            if TARGET_ENUMS.contains(&e.name.as_str()) {
                variants.insert(e.name.as_str(), &e.variants);
            }
        }
    }
    let mut out = Vec::new();
    for file in files {
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            for m in &f.matches {
                let target = m.arms.iter().find_map(|arm| {
                    let h0 = arm.head.first()?;
                    if arm.head.len() < 2 {
                        return None;
                    }
                    if variants.contains_key(h0.as_str()) {
                        return Some(h0.as_str());
                    }
                    if h0 == "Self" {
                        let it = f.impl_type.as_deref()?;
                        if variants.contains_key(it) {
                            return Some(it);
                        }
                    }
                    None
                });
                let Some(enum_name) = target else { continue };
                let vars = variants[enum_name];
                let named: BTreeSet<&str> = m
                    .arms
                    .iter()
                    .filter(|arm| {
                        arm.head.len() >= 2 && (arm.head[0] == enum_name || arm.head[0] == "Self")
                    })
                    .map(|arm| arm.head[1].as_str())
                    .collect();
                if let Some(wild) = m.arms.iter().find(|a| a.wildcard) {
                    out.push(Violation {
                        path: file.path.clone(),
                        line: wild.line.max(m.line),
                        rule: rules::EXHAUSTIVE_STRATEGY_MATCH,
                        message: format!(
                            "match on `{enum_name}` in `{}` has a catch-all arm; name \
                             every variant so adding one fails lint at this dispatch site",
                            f.name
                        ),
                        chain: None,
                    });
                    continue;
                }
                let missing: Vec<&str> = vars
                    .iter()
                    .map(String::as_str)
                    .filter(|v| !named.contains(v))
                    .collect();
                if !missing.is_empty() {
                    out.push(Violation {
                        path: file.path.clone(),
                        line: m.line,
                        rule: rules::EXHAUSTIVE_STRATEGY_MATCH,
                        message: format!(
                            "match on `{enum_name}` in `{}` does not name variant(s) {}; \
                             handle them explicitly",
                            f.name,
                            missing
                                .iter()
                                .map(|v| format!("`{v}`"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                        chain: None,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects;
    use crate::parser::parse_file;

    fn parsed(sources: &[(&str, &str)]) -> Vec<ParsedFile> {
        sources.iter().map(|(p, s)| parse_file(p, s)).collect()
    }

    fn analyzed(sources: &[(&str, &str)]) -> (Vec<ParsedFile>, CallGraph, EffectTable) {
        let files = parsed(sources);
        let g = CallGraph::build(&files);
        let fx = effects::infer(&files, &g);
        (files, g, fx)
    }

    #[test]
    fn transitive_chain_is_caught_and_kernel_sites_are_not_double_reported() {
        let (files, g, fx) = analyzed(&[
            (
                "crates/core/src/counting.rs",
                "pub fn count_supports() { helper(); local.unwrap(); }\n",
            ),
            (
                "crates/core/src/helpers.rs",
                "pub fn helper() { x.unwrap(); }\n",
            ),
        ]);
        let v = transitive_panic(&files, &g, &fx, |_, _| false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].path, "crates/core/src/helpers.rs");
        assert!(v[0].message.contains("count_supports -> helper"));
        assert_eq!(v[0].chain.as_deref(), Some("count_supports -> helper"));
    }

    #[test]
    fn unreachable_panics_are_not_flagged() {
        let (files, g, fx) = analyzed(&[
            (
                "crates/core/src/counting.rs",
                "pub fn count_supports() {}\n",
            ),
            (
                "crates/core/src/misc.rs",
                "pub fn island() { x.unwrap(); }\n",
            ),
        ]);
        assert!(transitive_panic(&files, &g, &fx, |_, _| false).is_empty());
    }

    #[test]
    fn absorbed_sites_are_silenced() {
        let (files, g, fx) = analyzed(&[
            ("crates/core/src/counting.rs", "pub fn k() { helper(); }\n"),
            (
                "crates/core/src/helpers.rs",
                "pub fn helper() { x.unwrap(); }\n",
            ),
        ]);
        let mut asked = Vec::new();
        let v = transitive_panic(&files, &g, &fx, |p, l| {
            asked.push((p.to_string(), l));
            true
        });
        assert!(v.is_empty());
        assert_eq!(asked.len(), 1);
    }

    #[test]
    fn io_source_site_fires_with_a_witness_chain() {
        let (files, g, fx) = analyzed(&[
            (
                "crates/core/src/counting.rs",
                "pub fn count_pass() { helper(); }\n",
            ),
            (
                "crates/core/src/helpers.rs",
                "pub fn helper() { println!(\"dbg\"); }\n",
            ),
        ]);
        let v = effect_purity(&files, &g, &fx);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, rules::NO_IO_IN_KERNELS);
        assert_eq!(v[0].path, "crates/core/src/helpers.rs");
        assert_eq!(v[0].chain.as_deref(), Some("count_pass -> helper"));
    }

    #[test]
    fn sanctioned_callee_yields_a_boundary_finding_at_the_kernel_line() {
        let (files, g, fx) = analyzed(&[
            (
                "crates/core/src/vertical.rs",
                "pub fn build_slice() {\n    Stopwatch::start();\n}\n",
            ),
            (
                "crates/itemset/src/stats.rs",
                "impl Stopwatch { pub fn start() -> Stopwatch { Instant::now(); Stopwatch } }\n",
            ),
        ]);
        let v = effect_purity(&files, &g, &fx);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, rules::NO_WALL_CLOCK_IN_KERNELS);
        // Reported at the kernel's call line, not inside stats.rs.
        assert_eq!(v[0].path, "crates/core/src/vertical.rs");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("Instant"), "{}", v[0].message);
    }

    #[test]
    fn io_plumbing_is_exempt_from_the_io_rule_but_not_its_callers() {
        let (files, g, fx) = analyzed(&[
            (
                "crates/io/src/readat.rs",
                "pub fn read_block() { std::fs::read(\"x\"); }\n",
            ),
            (
                "crates/core/src/counting.rs",
                "pub fn count_sharded() { read_block(); }\n",
            ),
        ]);
        let v = effect_purity(&files, &g, &fx);
        // readat.rs's own fs::read is sanctioned (no source-site finding);
        // the compute kernel calling into it is the boundary violation.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, rules::NO_IO_IN_KERNELS);
        assert_eq!(v[0].path, "crates/core/src/counting.rs");
    }

    #[test]
    fn spawn_fires_once_at_the_source_site_for_all_kernel_callers() {
        let (files, g, fx) = analyzed(&[
            (
                "crates/core/src/counting.rs",
                "pub fn count_a() { map_chunks(); }\npub fn count_b() { map_chunks(); }\n",
            ),
            (
                "crates/itemset/src/parallel.rs",
                "pub fn map_chunks() { scope.spawn(|| {});\n}\n",
            ),
        ]);
        let v: Vec<_> = effect_purity(&files, &g, &fx)
            .into_iter()
            .filter(|v| v.rule == rules::NO_SPAWN_IN_KERNELS)
            .collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].path, "crates/itemset/src/parallel.rs");
    }

    #[test]
    fn hot_loop_call_into_allocating_fn_fires_interprocedurally() {
        let (files, g, fx) = analyzed(&[
            (
                "crates/core/src/counting.rs",
                "pub fn count(xs: &[u32]) {\n    for x in xs {\n        boxed(*x);\n    }\n}\n",
            ),
            (
                "crates/core/src/helpers.rs",
                "pub fn boxed(x: u32) -> Vec<u32> { vec![x] }\n",
            ),
        ]);
        let v = alloc_calls_in_hot_loop(&files, &g, &fx);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, rules::NO_ALLOC_IN_HOT_LOOP);
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("boxed"), "{}", v[0].message);
    }

    #[test]
    fn hot_loop_calls_into_clean_fns_do_not_fire() {
        let (files, g, fx) = analyzed(&[
            (
                "crates/core/src/counting.rs",
                "pub fn count(xs: &[u32]) {\n    for x in xs {\n        pure(*x);\n    }\n}\n",
            ),
            (
                "crates/core/src/helpers.rs",
                "pub fn pure(x: u32) -> u32 { x }\n",
            ),
        ]);
        assert!(alloc_calls_in_hot_loop(&files, &g, &fx).is_empty());
    }

    #[test]
    fn hot_loop_allocs_fire_only_in_kernel_files() {
        let src = "fn f(n: usize) { for i in 0..n { let v = vec![i]; } }\n";
        let kernel = parsed(&[("crates/core/src/vertical.rs", src)]);
        assert_eq!(no_alloc_in_hot_loop(&kernel).len(), 1);
        let plain = parsed(&[("crates/core/src/miner.rs", src)]);
        assert!(no_alloc_in_hot_loop(&plain).is_empty());
    }

    #[test]
    fn wildcard_match_on_a_target_enum_fires() {
        let files = parsed(&[(
            "x.rs",
            r#"
pub enum CountingStrategy { Direct, HashTree, Vertical }
fn dispatch(s: CountingStrategy) -> u32 {
    match s {
        CountingStrategy::Direct => 1,
        _ => 0,
    }
}
"#,
        )]);
        let v = exhaustive_strategy_match(&files);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("catch-all"));
    }

    #[test]
    fn missing_variant_fires_and_full_match_is_clean() {
        let files = parsed(&[(
            "x.rs",
            r#"
pub enum Algorithm { All, SomeA, Dynamic }
fn partial(a: Algorithm) -> u32 {
    match a {
        Algorithm::All => 1,
        Algorithm::SomeA => 2,
    }
}
fn full(a: Algorithm) -> u32 {
    match a {
        Algorithm::All => 1,
        Algorithm::SomeA => 2,
        Algorithm::Dynamic => 3,
    }
}
"#,
        )]);
        let v = exhaustive_strategy_match(&files);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`Dynamic`"));
    }

    #[test]
    fn option_wrapped_matches_are_not_targeted() {
        let files = parsed(&[(
            "x.rs",
            r#"
pub enum Parallelism { Serial, Auto }
fn f(p: Option<Parallelism>) -> u32 {
    match p {
        Some(x) => 1,
        None => 0,
    }
}
"#,
        )]);
        assert!(exhaustive_strategy_match(&files).is_empty());
    }

    #[test]
    fn self_matches_inside_the_enum_impl_are_targeted() {
        let files = parsed(&[(
            "x.rs",
            r#"
pub enum Parallelism { Serial, Auto }
impl Parallelism {
    fn n(&self) -> u32 {
        match self {
            Self::Serial => 1,
        }
    }
}
"#,
        )]);
        let v = exhaustive_strategy_match(&files);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`Auto`"));
    }
}
