//! The seqpat lint rule registry and the per-file lexical rules.
//!
//! The rules here are lexical heuristics, tuned for this workspace's idioms.
//! They are deliberately simple: the goal is to catch the classes of drift
//! named in DESIGN.md (panics and lossy casts in the counting kernels, stray
//! wall-clock reads, stray RNG construction, unreported stats), not to parse
//! Rust. The semantic rules live in `semantic`, `effects`, `dataflow`, and
//! `determinism`; the registry below covers every tier. Anything a heuristic
//! gets wrong can be silenced at the site with an allow-comment naming the
//! rule (see `engine` for the grammar).

use std::collections::BTreeSet;

use crate::lexer::{lex, Token, TokenKind};

/// Rule: no `unwrap()`/`expect()`/panic-family macros/unguarded indexing in
/// kernel files outside `#[cfg(test)]`.
pub const NO_PANIC_IN_KERNELS: &str = "no-panic-in-kernels";
/// Rule: no bare `as <integer>` casts in kernel files.
pub const NO_LOSSY_CASTS_IN_KERNELS: &str = "no-lossy-casts-in-kernels";
/// Rule: `Instant`/`SystemTime` only in stats.rs, the bench crate, the CLI.
pub const NO_WALL_CLOCK_OUTSIDE_STATS: &str = "no-wall-clock-outside-stats";
/// Rule: every public `MiningStats` field is surfaced by the CLI printer.
pub const STATS_COVERAGE: &str = "stats-coverage";
/// Meta rule reported for malformed/unjustified suppression comments.
pub const SUPPRESSION: &str = "suppression";
/// Rule: no panic construct reachable from kernel entry points through the
/// workspace call graph (the cross-file generalization of
/// [`NO_PANIC_IN_KERNELS`]).
pub const TRANSITIVE_PANIC_REACHABILITY: &str = "transitive-panic-reachability";
/// Rule: no allocation in the innermost loop of a kernel fn.
pub const NO_ALLOC_IN_HOT_LOOP: &str = "no-alloc-in-hot-loop";
/// Rule: `match` on the strategy/parallelism/algorithm enums must name
/// every variant (no catch-all arm).
pub const EXHAUSTIVE_STRATEGY_MATCH: &str = "exhaustive-strategy-match";
/// Rule: no file/stdio I/O reachable from a compute-kernel fn (effect
/// query; the I/O plumbing files are the sanctioned zone).
pub const NO_IO_IN_KERNELS: &str = "no-io-in-kernels";
/// Rule: no wall-clock read reachable from a kernel fn (effect query; the
/// transitive generalization of [`NO_WALL_CLOCK_OUTSIDE_STATS`]).
pub const NO_WALL_CLOCK_IN_KERNELS: &str = "no-wall-clock-in-kernels";
/// Rule: no thread spawn reachable from a kernel fn — kernels are leaf
/// compute; fan-out is owned by one justified-suppressed site.
pub const NO_SPAWN_IN_KERNELS: &str = "no-spawn-in-kernels";
/// Meta rule: an allow-comment whose rule no longer fires on the covered
/// line(s) must be deleted.
pub const STALE_SUPPRESSION: &str = "stale-suppression";
/// Rule: a closure handed to a parallel fan-out (`thread::scope`/`spawn`/
/// `map_chunks`) must not capture `&mut` state or interior-mutable shared
/// state — racing writers make chunk results timing-dependent.
pub const SHARED_MUTABLE_CAPTURE: &str = "shared-mutable-capture-in-parallel";
/// Rule: partial-merge fns (merge*/combine*/reduce*/*_partials) must combine
/// chunk results with associative + commutative ops only.
pub const ORDER_SENSITIVE_REDUCTION: &str = "order-sensitive-reduction";
/// Rule: hash-container iteration order must not flow to an order-sensitive
/// sink without normalization (the dataflow successor of the retired lexical
/// `deterministic-iteration` heuristic).
pub const NONDET_ITERATION_FLOW: &str = "nondeterministic-iteration-flow";
/// Rule: RNG construction (thread_rng/from_entropy/OsRng/seed_from_u64/…)
/// is confined to datagen, bench, the rand shims, and tests.
pub const UNSEEDED_RANDOMNESS: &str = "unseeded-randomness-outside-datagen";

/// How a rule's findings gate the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Findings fail the run (and CI).
    Deny,
    /// Findings are reported but do not fail the run.
    Warn,
}

impl Severity {
    /// Lowercase name, as printed by `--list-rules` and the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }

    /// The SARIF `level` for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Deny => "error",
            Severity::Warn => "warning",
        }
    }
}

/// Which analysis layer produces a rule's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Per-file token-stream heuristics.
    Lexical,
    /// Parser/call-graph driven, workspace-wide.
    Semantic,
    /// About the lint comments themselves.
    Meta,
}

impl Tier {
    /// Lowercase name, as printed by `--list-rules`.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Lexical => "lexical",
            Tier::Semantic => "semantic",
            Tier::Meta => "meta",
        }
    }
}

/// Registry entry for one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name (one of the constants above).
    pub name: &'static str,
    /// Whether findings fail the run.
    pub severity: Severity,
    /// Which analysis layer produces the findings.
    pub tier: Tier,
    /// Whether an allow-comment may silence the rule. Meta rules are not
    /// suppressible: a suppression cannot vouch for itself.
    pub suppressible: bool,
    /// One-line description for `--list-rules` and SARIF.
    pub desc: &'static str,
}

/// Every rule, in `--list-rules` order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: NO_PANIC_IN_KERNELS,
        severity: Severity::Deny,
        tier: Tier::Lexical,
        suppressible: true,
        desc: "kernel files must not unwrap()/expect(), invoke panic-family macros, \
               or slice-index outside debug_assert-guarded fns (non-test code)",
    },
    RuleInfo {
        name: NO_LOSSY_CASTS_IN_KERNELS,
        severity: Severity::Deny,
        tier: Tier::Lexical,
        suppressible: true,
        desc: "kernel files must use the cast helpers (cast::idx/w64/id32) or \
               try_into instead of bare `as <integer>` casts",
    },
    RuleInfo {
        name: NO_WALL_CLOCK_OUTSIDE_STATS,
        severity: Severity::Deny,
        tier: Tier::Lexical,
        suppressible: true,
        desc: "Instant/SystemTime are confined to stats.rs, crates/bench, and \
               crates/cli",
    },
    RuleInfo {
        name: STATS_COVERAGE,
        severity: Severity::Deny,
        tier: Tier::Lexical,
        suppressible: true,
        desc: "every public MiningStats field must be referenced by the CLI \
               --stats printer",
    },
    RuleInfo {
        name: TRANSITIVE_PANIC_REACHABILITY,
        severity: Severity::Deny,
        tier: Tier::Semantic,
        suppressible: true,
        desc: "no unwrap()/expect()/panic-family macro in any fn reachable from \
               a kernel entry point through the workspace call graph",
    },
    RuleInfo {
        name: NO_ALLOC_IN_HOT_LOOP,
        severity: Severity::Warn,
        tier: Tier::Semantic,
        suppressible: true,
        desc: "no Vec::new/push/collect/to_vec/clone/format! in the innermost \
               loop (or per-element closure) of a kernel fn",
    },
    RuleInfo {
        name: EXHAUSTIVE_STRATEGY_MATCH,
        severity: Severity::Deny,
        tier: Tier::Semantic,
        suppressible: true,
        desc: "match on CountingStrategy/Parallelism/Algorithm must name every \
               variant — no `_` or binding catch-all arm",
    },
    RuleInfo {
        name: NO_IO_IN_KERNELS,
        severity: Severity::Deny,
        tier: Tier::Semantic,
        suppressible: true,
        desc: "no file/stdio I/O effect reachable from a compute-kernel fn \
               through the call graph (crates/io, the CLI, and format.rs are \
               the sanctioned zone)",
    },
    RuleInfo {
        name: NO_WALL_CLOCK_IN_KERNELS,
        severity: Severity::Deny,
        tier: Tier::Semantic,
        suppressible: true,
        desc: "no Instant/SystemTime/elapsed effect reachable from a kernel fn \
               through the call graph (the transitive form of \
               no-wall-clock-outside-stats)",
    },
    RuleInfo {
        name: NO_SPAWN_IN_KERNELS,
        severity: Severity::Deny,
        tier: Tier::Semantic,
        suppressible: true,
        desc: "no thread-spawn effect reachable from a kernel fn — kernels are \
               leaf compute; fan-out belongs to the one suppressed map_chunks \
               site",
    },
    RuleInfo {
        name: SHARED_MUTABLE_CAPTURE,
        severity: Severity::Deny,
        tier: Tier::Semantic,
        suppressible: true,
        desc: "closures handed to thread::scope/spawn/map_chunks must not \
               capture &mut or interior-mutable (Mutex/RefCell/Atomic*) shared \
               state",
    },
    RuleInfo {
        name: ORDER_SENSITIVE_REDUCTION,
        severity: Severity::Deny,
        tier: Tier::Semantic,
        suppressible: true,
        desc: "partial-merge fns (merge*/combine*/reduce*/*_partials) must \
               combine chunk results associatively and commutatively — no \
               -=//=/%=, no float +=/*=",
    },
    RuleInfo {
        name: NONDET_ITERATION_FLOW,
        severity: Severity::Deny,
        tier: Tier::Semantic,
        suppressible: true,
        desc: "hash-container iteration order must not reach an output, a \
               format!, a float accumulator, or a general fold without a sort \
               or order-insensitive reduction on the way",
    },
    RuleInfo {
        name: UNSEEDED_RANDOMNESS,
        severity: Severity::Deny,
        tier: Tier::Lexical,
        suppressible: true,
        desc: "RNG construction (thread_rng/from_entropy/OsRng/seed_from_u64) \
               is confined to crates/datagen, crates/bench, the rand/proptest \
               shims, and test code",
    },
    RuleInfo {
        name: STALE_SUPPRESSION,
        severity: Severity::Deny,
        tier: Tier::Meta,
        suppressible: false,
        desc: "an allow() comment whose rule no longer fires on the covered \
               line(s) must be removed",
    },
    RuleInfo {
        name: SUPPRESSION,
        severity: Severity::Deny,
        tier: Tier::Meta,
        suppressible: false,
        desc: "allow() comments must be well-formed, name known suppressible \
               rules, and carry a justification",
    },
];

/// Registry entry for `name`, if it is a rule.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// True if `name` is any rule name (suppressible or not).
pub fn is_known_rule(name: &str) -> bool {
    rule_info(name).is_some()
}

/// Severity of a rule, defaulting to deny for unknown names (there are
/// none, but the total function keeps call sites simple).
pub fn severity_of(name: &str) -> Severity {
    rule_info(name).map_or(Severity::Deny, |r| r.severity)
}

/// Parses a `--rules` comma list into rule names, rejecting unknown names
/// with an error that lists the registry (instead of silently filtering
/// every finding away).
pub fn parse_rule_filter(list: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if !is_known_rule(name) {
            let known: Vec<&str> = RULES.iter().map(|r| r.name).collect();
            return Err(format!(
                "unknown rule `{name}`; known rules: {}",
                known.join(", ")
            ));
        }
        out.push(name.to_string());
    }
    if out.is_empty() {
        return Err("empty --rules filter; pass a comma-separated rule list".to_string());
    }
    Ok(out)
}

/// One lint finding, attributed to a workspace-relative path and line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (one of the constants above).
    pub rule: &'static str,
    /// Human-readable explanation of the finding.
    pub message: String,
    /// Minimal witness chain for effect-query findings (`--explain`), e.g.
    /// `"count_pass -> helper -> deep"`. `None` for lexical/meta findings.
    pub chain: Option<String>,
}

/// Basenames of the counting-kernel files (rules 1 and 3 apply here).
/// `trie.rs` and `lookup.rs` are the serve layer's index builder and query
/// hot path (`crates/serve`), held to the same discipline; `readat.rs` is
/// the positioned-read shim on the shard hot path.
const KERNEL_BASENAMES: &[&str] = &[
    "counting.rs",
    "vertical.rs",
    "bitmap.rs",
    "arena.rs",
    "hash_tree.rs",
    "contain.rs",
    "dataset.rs",
    "colstore.rs",
    "trie.rs",
    "lookup.rs",
    "readat.rs",
];

/// Path suffixes of kernel files matched by full suffix rather than
/// basename, so an unrelated `stream.rs` elsewhere never inherits kernel
/// discipline by name collision.
const KERNEL_PATH_SUFFIXES: &[&str] = &["io/src/stream.rs"];

/// Basenames/suffixes of the kernel files that ARE the I/O layer: they obey
/// every kernel rule except `no-io-in-kernels`, whose sanctioned zone they
/// define (positioned shard reads are their entire purpose).
const IO_PLUMBING_BASENAMES: &[&str] = &["colstore.rs", "readat.rs"];

/// Macros that unconditionally panic when reached (shared with the parser's
/// panic-site extraction).
pub(crate) const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Hash-container type names (order of iteration is nondeterministic).
/// Shared with the `dataflow` taint analysis.
pub(crate) const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Constructors/methods that mint randomness. Matched as `name(`-style calls
/// or `::Name` paths; `seed_from_u64`/`from_seed` are included because a
/// seeded RNG outside datagen still makes product output depend on the seed
/// plumbing rather than the input data.
const RNG_CONSTRUCTORS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "ThreadRng",
    "seed_from_u64",
    "from_seed",
    "from_rng",
];

/// Idents that may legitimately precede `[` without it being an index
/// expression (array literals after `return`, slice patterns, etc.).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "await", "box", "break", "const", "continue", "dyn", "else", "enum", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// True for the counting-kernel files (by basename or path suffix).
pub fn is_kernel_path(path: &str) -> bool {
    KERNEL_BASENAMES.contains(&basename(path))
        || KERNEL_PATH_SUFFIXES.iter().any(|s| path.ends_with(s))
}

/// True for the kernel files that are themselves the I/O layer (colstore,
/// readat, the streaming colstore builder).
pub fn is_io_plumbing_path(path: &str) -> bool {
    IO_PLUMBING_BASENAMES.contains(&basename(path))
        || KERNEL_PATH_SUFFIXES.iter().any(|s| path.ends_with(s))
}

/// True for the compute kernels: kernel files minus the I/O plumbing. These
/// are the entry points of the `no-io-in-kernels` effect query.
pub fn is_compute_kernel_path(path: &str) -> bool {
    is_kernel_path(path) && !is_io_plumbing_path(path)
}

/// Sanctioned zone of the `DoesIo` effect: intrinsic I/O sites in these
/// files are expected (the I/O layer, the CLI/bench front ends, datagen's
/// writers, and the serializers). A kernel may still not *reach* them —
/// that is the boundary finding — but the sites themselves are not flagged.
pub fn is_io_sanctioned_path(path: &str) -> bool {
    path.starts_with("crates/io/")
        || path.starts_with("crates/cli/")
        || path.starts_with("crates/bench/")
        || path.starts_with("crates/datagen/")
        || basename(path) == "format.rs"
}

/// Sanctioned zone of the `WallClock` effect: mirrors the lexical
/// `no-wall-clock-outside-stats` allowance, plus the criterion shim.
pub fn is_clock_sanctioned_path(path: &str) -> bool {
    basename(path) == "stats.rs"
        || path.starts_with("crates/bench/")
        || path.starts_with("crates/cli/")
        || path.starts_with("crates/criterion-compat/")
}

/// Paths whose whole contents are test code: integration-test trees and the
/// property-test module kept in its own file.
pub fn is_test_path(path: &str) -> bool {
    path.contains("/tests/") || path.starts_with("tests/") || basename(path) == "proptests.rs"
}

/// Sanctioned zone of RNG construction: the synthetic-data generator, the
/// bench harness, and the rand/proptest shims (which *define* the
/// constructor names as trait methods).
pub fn is_random_sanctioned_path(path: &str) -> bool {
    path.starts_with("crates/datagen/")
        || path.starts_with("crates/bench/")
        || path.starts_with("crates/rand-compat/")
        || path.starts_with("crates/proptest-compat/")
}

/// Crates no product crate depends on: the linter itself and the vendored
/// test/bench shims (criterion/proptest API look-alikes). Their method
/// names deliberately collide with std and external APIs (`iter`, `get`,
/// `push`, …), so name-based resolution *into* them from another crate is
/// always spurious — a `.iter()` in `crates/core` cannot land in a crate
/// core does not link against. Calls within the same crate resolve
/// normally.
const SELF_CONTAINED_CRATES: &[&str] = &[
    "crates/lint/",
    "crates/criterion-compat/",
    "crates/proptest-compat/",
];

/// The self-contained-crate prefix of `path`, if any.
pub fn self_contained_crate(path: &str) -> Option<&'static str> {
    SELF_CONTAINED_CRATES
        .iter()
        .find(|p| path.starts_with(**p))
        .copied()
}

fn wall_clock_allowed(path: &str) -> bool {
    basename(path) == "stats.rs"
        || path.starts_with("crates/bench/")
        || path.starts_with("crates/cli/")
}

/// Byte range of one fn body together with whether it states an invariant.
struct FnBody {
    start: usize,
    end: usize,
    has_debug_assert: bool,
}

struct Analysis<'a> {
    path: &'a str,
    src: &'a str,
    tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    code: Vec<usize>,
    test_regions: Vec<(usize, usize)>,
    debug_assert_spans: Vec<(usize, usize)>,
    fn_bodies: Vec<FnBody>,
    out: Vec<Violation>,
}

/// Runs the per-file rules (1–4) over one source file. `rel_path` must be
/// workspace-relative with `/` separators — rule applicability is decided
/// from it.
pub fn analyze_file(rel_path: &str, src: &str) -> Vec<Violation> {
    if is_test_path(rel_path) {
        return Vec::new();
    }
    let tokens = lex(src);
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let mut a = Analysis {
        path: rel_path,
        src,
        tokens,
        code,
        test_regions: Vec::new(),
        debug_assert_spans: Vec::new(),
        fn_bodies: Vec::new(),
        out: Vec::new(),
    };
    a.find_test_regions();
    a.find_debug_assert_spans();
    a.find_fn_bodies();
    a.rule_no_panic();
    a.rule_no_lossy_casts();
    a.rule_no_wall_clock();
    a.rule_unseeded_randomness();
    a.out.sort();
    a.out.dedup();
    a.out
}

/// Byte spans of `#[cfg(test)]`-gated items in `src`. The engine's
/// suppression scanner uses this so allow-comments inside test-only code
/// are neither live nor reported stale.
pub fn test_region_spans(src: &str) -> Vec<(usize, usize)> {
    let tokens = lex(src);
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let mut a = Analysis {
        path: "",
        src,
        tokens,
        code,
        test_regions: Vec::new(),
        debug_assert_spans: Vec::new(),
        fn_bodies: Vec::new(),
        out: Vec::new(),
    };
    a.find_test_regions();
    a.test_regions
}

impl Analysis<'_> {
    /// Token at code index `ci`, if in range.
    fn tok(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).and_then(|&ti| self.tokens.get(ti))
    }

    /// Text of the code token at `ci`, or `""` past the end.
    fn txt(&self, ci: usize) -> &str {
        match self.tok(ci) {
            Some(t) => t.text(self.src),
            None => "",
        }
    }

    fn kind(&self, ci: usize) -> Option<TokenKind> {
        self.tok(ci).map(|t| t.kind)
    }

    fn push(&mut self, rule: &'static str, line: u32, message: String) {
        self.out.push(Violation {
            path: self.path.to_string(),
            line,
            rule,
            message,
            chain: None,
        });
    }

    /// Code index of the delimiter closing the one at `open_ci`.
    fn match_delim(&self, open_ci: usize) -> Option<usize> {
        let open = self.txt(open_ci);
        let close = match open {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return None,
        };
        let mut depth: u32 = 0;
        let mut ci = open_ci;
        while ci < self.code.len() {
            let s = self.txt(ci);
            if s == open {
                depth += 1;
            } else if s == close {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
            ci += 1;
        }
        None
    }

    fn in_spans(byte: usize, spans: &[(usize, usize)]) -> bool {
        spans.iter().any(|&(s, e)| byte >= s && byte < e)
    }

    fn in_test(&self, byte: usize) -> bool {
        Self::in_spans(byte, &self.test_regions)
    }

    fn in_debug_assert(&self, byte: usize) -> bool {
        Self::in_spans(byte, &self.debug_assert_spans)
    }

    /// True if the innermost fn enclosing `byte` states a `debug_assert!`
    /// invariant (the contract under which kernel indexing is allowed).
    fn enclosing_fn_has_debug_assert(&self, byte: usize) -> bool {
        self.fn_bodies
            .iter()
            .filter(|f| byte >= f.start && byte < f.end)
            .max_by_key(|f| f.start)
            .is_some_and(|f| f.has_debug_assert)
    }

    /// Records byte ranges of `#[cfg(test)]`-gated items.
    fn find_test_regions(&mut self) {
        let mut ci = 0;
        while ci < self.code.len() {
            let is_cfg_test = self.txt(ci) == "#"
                && self.txt(ci + 1) == "["
                && self.txt(ci + 2) == "cfg"
                && self.txt(ci + 3) == "("
                && self.txt(ci + 4) == "test"
                && self.txt(ci + 5) == ")"
                && self.txt(ci + 6) == "]";
            if !is_cfg_test {
                ci += 1;
                continue;
            }
            let region_start = match self.tok(ci) {
                Some(t) => t.start,
                None => break,
            };
            // Skip any further attributes between the cfg and the item.
            let mut j = ci + 7;
            while self.txt(j) == "#" && self.txt(j + 1) == "[" {
                match self.match_delim(j + 1) {
                    Some(close) => j = close + 1,
                    None => break,
                }
            }
            // The gated item ends at its matching `}` (mod/fn body) or at a
            // top-level `;` (gated use/static), whichever comes first.
            let mut end = self.src.len();
            let mut k = j;
            loop {
                match self.txt(k) {
                    "" => break,
                    ";" => {
                        if let Some(t) = self.tok(k) {
                            end = t.end;
                        }
                        break;
                    }
                    "{" => {
                        end = self
                            .match_delim(k)
                            .and_then(|c| self.tok(c))
                            .map_or(self.src.len(), |t| t.end);
                        break;
                    }
                    _ => k += 1,
                }
            }
            self.test_regions.push((region_start, end));
            ci = j;
        }
    }

    /// Records byte spans of `debug_assert*!(…)` invocations; rules 1 and 3
    /// skip tokens inside them (asserts may index and cast freely).
    fn find_debug_assert_spans(&mut self) {
        for ci in 0..self.code.len() {
            let starts = self.kind(ci) == Some(TokenKind::Ident)
                && self.txt(ci).starts_with("debug_assert")
                && self.txt(ci + 1) == "!";
            if !starts {
                continue;
            }
            if !matches!(self.txt(ci + 2), "(" | "[" | "{") {
                continue;
            }
            if let (Some(start), Some(end)) = (
                self.tok(ci).map(|t| t.start),
                self.match_delim(ci + 2)
                    .and_then(|c| self.tok(c))
                    .map(|t| t.end),
            ) {
                self.debug_assert_spans.push((start, end));
            }
        }
    }

    /// Records every fn body's byte range and whether it contains a
    /// `debug_assert`.
    fn find_fn_bodies(&mut self) {
        let mut bodies = Vec::new();
        for ci in 0..self.code.len() {
            if self.txt(ci) != "fn" || self.kind(ci) != Some(TokenKind::Ident) {
                continue;
            }
            // Find the body `{`; a `;` first means a bodyless declaration.
            let mut k = ci + 1;
            let mut open = None;
            for _ in 0..400 {
                match self.txt(k) {
                    "" | ";" => break,
                    "{" => {
                        open = Some(k);
                        break;
                    }
                    _ => k += 1,
                }
            }
            let Some(open) = open else { continue };
            let close = self.match_delim(open);
            let start = match self.tok(open) {
                Some(t) => t.start,
                None => continue,
            };
            let end = close
                .and_then(|c| self.tok(c))
                .map_or(self.src.len(), |t| t.end);
            let close_ci = close.unwrap_or(self.code.len());
            let has_debug_assert = (open..close_ci).any(|i| {
                self.kind(i) == Some(TokenKind::Ident) && self.txt(i).starts_with("debug_assert")
            });
            bodies.push(FnBody {
                start,
                end,
                has_debug_assert,
            });
        }
        self.fn_bodies = bodies;
    }

    /// Rule 1: no-panic-in-kernels.
    fn rule_no_panic(&mut self) {
        if !is_kernel_path(self.path) {
            return;
        }
        let mut found: Vec<(u32, String)> = Vec::new();
        for ci in 0..self.code.len() {
            let Some(tok) = self.tok(ci) else { break };
            let (byte, line, kind) = (tok.start, tok.line, tok.kind);
            if self.in_test(byte) || self.in_debug_assert(byte) {
                continue;
            }
            let s = self.txt(ci);
            match kind {
                TokenKind::Ident if PANIC_MACROS.contains(&s) && self.txt(ci + 1) == "!" => {
                    found.push((
                        line,
                        format!(
                            "`{s}!` in a kernel file; restructure, or suppress with a \
                             justification if the branch is provably unreachable"
                        ),
                    ));
                }
                TokenKind::Ident
                    if (s == "unwrap" || s == "expect")
                        && self.txt(ci + 1) == "("
                        && ci > 0
                        && self.txt(ci - 1) == "." =>
                {
                    found.push((
                        line,
                        format!("`.{s}()` in a kernel file; use match/if-let or `unwrap_or*`"),
                    ));
                }
                TokenKind::Punct if s == "[" && ci > 0 => {
                    let prev_txt = self.txt(ci - 1).to_string();
                    let indexes = match self.kind(ci - 1) {
                        Some(TokenKind::Ident) => !NON_INDEX_KEYWORDS.contains(&prev_txt.as_str()),
                        Some(TokenKind::Punct) => matches!(prev_txt.as_str(), ")" | "]" | "?"),
                        _ => false,
                    };
                    if indexes && !self.enclosing_fn_has_debug_assert(byte) {
                        found.push((
                            line,
                            "slice indexing in a kernel fn with no `debug_assert!` stating \
                             the bound invariant; add one (or use `.get()`)"
                                .to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
        for (line, msg) in found {
            self.push(NO_PANIC_IN_KERNELS, line, msg);
        }
    }

    /// Rule 3: no-lossy-casts-in-kernels.
    fn rule_no_lossy_casts(&mut self) {
        if !is_kernel_path(self.path) {
            return;
        }
        let mut found: Vec<(u32, String)> = Vec::new();
        for ci in 0..self.code.len() {
            let Some(tok) = self.tok(ci) else { break };
            if tok.kind != TokenKind::Ident || self.txt(ci) != "as" {
                continue;
            }
            if self.in_test(tok.start) || self.in_debug_assert(tok.start) {
                continue;
            }
            let target = self.txt(ci + 1);
            if INT_TYPES.contains(&target) {
                found.push((
                    tok.line,
                    format!(
                        "bare `as {target}` cast in a kernel file; use the cast helpers \
                         (cast::idx / cast::w64 / cast::id32) or `try_into`"
                    ),
                ));
            }
        }
        for (line, msg) in found {
            self.push(NO_LOSSY_CASTS_IN_KERNELS, line, msg);
        }
    }

    /// Rule 4: no-wall-clock-outside-stats.
    fn rule_no_wall_clock(&mut self) {
        if wall_clock_allowed(self.path) {
            return;
        }
        let mut found: Vec<(u32, String)> = Vec::new();
        for ci in 0..self.code.len() {
            let Some(tok) = self.tok(ci) else { break };
            if tok.kind != TokenKind::Ident || self.in_test(tok.start) {
                continue;
            }
            let s = self.txt(ci);
            if s == "Instant" || s == "SystemTime" {
                found.push((
                    tok.line,
                    format!(
                        "`{s}` outside stats.rs/bench/cli; time through \
                         `stats::Stopwatch` so wall-clock stays in one place"
                    ),
                ));
            }
        }
        for (line, msg) in found {
            self.push(NO_WALL_CLOCK_OUTSIDE_STATS, line, msg);
        }
    }

    /// Rule: unseeded-randomness-outside-datagen.
    fn rule_unseeded_randomness(&mut self) {
        if is_random_sanctioned_path(self.path) {
            return;
        }
        let mut found: Vec<(u32, String)> = Vec::new();
        for ci in 0..self.code.len() {
            let Some(tok) = self.tok(ci) else { break };
            if tok.kind != TokenKind::Ident || self.in_test(tok.start) {
                continue;
            }
            let s = self.txt(ci);
            if !RNG_CONSTRUCTORS.contains(&s) {
                continue;
            }
            // A call `name(`, a path segment `::Name`, or a turbofish
            // `Name::`; a bare ident in a `use` line or doc position is not
            // RNG construction.
            let constructs = self.txt(ci + 1) == "("
                || (ci >= 2 && self.txt(ci - 1) == ":" && self.txt(ci - 2) == ":")
                || (self.txt(ci + 1) == ":" && self.txt(ci + 2) == ":");
            let in_use = (0..ci)
                .rev()
                .take(12)
                .map(|k| self.txt(k))
                .take_while(|t| *t != ";" && *t != "}")
                .any(|t| t == "use");
            if constructs && !in_use {
                found.push((
                    tok.line,
                    format!(
                        "`{s}` constructs randomness outside the sanctioned zone \
                         (crates/datagen, crates/bench, the rand/proptest shims, tests); \
                         product output must be a function of the input data"
                    ),
                ));
            }
        }
        for (line, msg) in found {
            self.push(UNSEEDED_RANDOMNESS, line, msg);
        }
    }
}

/// Rule 5: stats-coverage. Parses the public fields of `MiningStats` out of
/// `stats_src` (core's stats.rs) and requires each field ident to appear
/// somewhere in `cli_src` (the CLI, which owns the `--stats` printer).
pub fn stats_coverage(stats_rel_path: &str, stats_src: &str, cli_src: &str) -> Vec<Violation> {
    let fields = mining_stats_fields(stats_src);
    if fields.is_empty() {
        return Vec::new();
    }
    let cli_tokens = lex(cli_src);
    let cli_idents: BTreeSet<&str> = cli_tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(cli_src))
        .collect();
    fields
        .into_iter()
        .filter(|(name, _)| !cli_idents.contains(name.as_str()))
        .map(|(name, line)| Violation {
            path: stats_rel_path.to_string(),
            line,
            rule: STATS_COVERAGE,
            message: format!(
                "public MiningStats field `{name}` is never referenced by the CLI; \
                 surface it in the --stats printer"
            ),
            chain: None,
        })
        .collect()
}

/// `(name, line)` of each `pub` field of `struct MiningStats` in `src`.
fn mining_stats_fields(src: &str) -> Vec<(String, u32)> {
    let tokens = lex(src);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let txt = |i: usize| -> &str {
        match code.get(i) {
            Some(t) => t.text(src),
            None => "",
        }
    };
    let mut fields = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if txt(i) == "struct" && txt(i + 1) == "MiningStats" && txt(i + 2) == "{" {
            let mut depth: u32 = 1;
            let mut j = i + 3;
            while j < code.len() && depth > 0 {
                match txt(j) {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    "pub"
                        if depth == 1
                            && code.get(j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                            && txt(j + 2) == ":"
                            && txt(j + 3) != ":" =>
                    {
                        if let Some(t) = code.get(j + 1) {
                            fields.push((t.text(src).to_string(), t.line));
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    fields
}
