//! Determinism snapshots over the fixture mini-workspace: the inferred
//! effect table and the `--explain` rendering must be byte-identical
//! across runs — the `effects.json` artifact is diffed in CI, so any
//! nondeterminism (hash iteration, unstable sorts, racy SCC numbering)
//! shows up as churn.

use std::path::{Path, PathBuf};

use seqpat_lint::engine::{self, Report};
use seqpat_lint::rules;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixture_ws")
}

fn fixture_report() -> Report {
    engine::run(&fixture_root()).expect("fixture workspace is readable")
}

#[test]
fn effects_json_is_byte_identical_across_runs() {
    let first = fixture_report();
    let second = fixture_report();
    assert!(!first.effects_json.is_empty());
    assert_eq!(
        first.effects_json, second.effects_json,
        "effects.json must be a pure function of the sources"
    );
    // Spot-check the artifact: schema header, the SCC count covering the
    // ping/pong cycle, and the seeded effect names.
    assert!(first
        .effects_json
        .contains("\"schema\": \"seqpat-effects-v1\""));
    assert!(first.effects_json.contains("\"fn\": \"ping\""));
    assert!(first.effects_json.contains("does-io"));
    assert!(first.effects_json.contains("panics"));
}

#[test]
fn explain_renders_the_same_minimal_witness_chain_every_run() {
    let first = engine::explain(&fixture_report(), rules::NO_IO_IN_KERNELS);
    let second = engine::explain(&fixture_report(), rules::NO_IO_IN_KERNELS);
    assert_eq!(first, second, "--explain output must be stable");
    // The minimal chain into the ping/pong SCC is the one-hop route
    // through the alias, not any longer tour around the cycle.
    assert!(
        first.contains("count_traced -> ping"),
        "witness chain present: {first}"
    );
    assert!(first.contains("crates/engine/src/recurse.rs"));
}

#[test]
fn explain_reports_clean_rules_as_clean() {
    let out = engine::explain(&fixture_report(), rules::NO_SPAWN_IN_KERNELS);
    assert!(out.contains("0 finding(s)"));
    assert!(out.contains("nothing to explain"));
}
