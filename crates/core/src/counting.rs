//! Support counting for candidate sequences over the transformed database.
//!
//! Four interchangeable strategies plus an automatic selector (an ablation
//! bench in `seqpat-bench` compares them):
//!
//! * [`CountingStrategy::Direct`] — for each customer, test every candidate
//!   with the greedy containment scan, prefiltered by a litemset-presence
//!   bitmap (a candidate using an id the customer never bought cannot
//!   match).
//! * [`CountingStrategy::HashTree`] — the paper's approach: put the
//!   candidates in a [`SequenceHashTree`] and let each customer walk it,
//!   touching only candidates whose prefix ids actually occur.
//! * [`CountingStrategy::Vertical`] — id-list joins over the occurrence
//!   index built by [`crate::vertical`]: support comes from merge-joining
//!   occurrence lists instead of scanning customers at all.
//! * [`CountingStrategy::Bitmap`] — SPAM-style packed bitmaps with
//!   shift-AND S-step extension kernels ([`crate::bitmap`]): the temporal
//!   join becomes word-parallel ALU work over a flat `u64` arena.
//! * [`CountingStrategy::Auto`] — resolves to Bitmap, Vertical, or
//!   HashTree after the transformation phase from cheap database
//!   statistics (see [`auto_decide`]); the decision and its inputs are
//!   recorded in [`MiningStats`].
//!
//! All strategies produce identical counts (pinned by tests here and by
//! property tests at the workspace level). The horizontal strategies report
//! the number of exact containment tests performed; the vertical strategy
//! reports merge-joins; the bitmap strategy reports smeared words — all
//! feed the harness's machine-independent cost counters.
//!
//! ## Parallel counting
//!
//! Support is counted per customer, each customer at most once, so the
//! horizontal strategies shard `tdb.customers` into contiguous chunks via
//! [`seqpat_itemset::parallel::map_chunks`]: every worker owns a private
//! support array plus private scratch (the presence bitmap for `Direct`,
//! a [`VisitSet`] for `HashTree` — the [`SequenceHashTree`] itself is
//! built once and shared immutably), and the per-chunk arrays and test
//! counters are reduced in chunk order. The vertical strategy shards
//! **candidates** (prefix runs) instead — see [`crate::vertical`]. Since
//! the per-candidate counts are exact `u64` sums, parallel runs are
//! **bit-identical** to serial runs — supports, large-sequence sets, and
//! cost counters all match regardless of thread count or OS scheduling.
//!
//! ## Per-run state: [`CountingContext`]
//!
//! The algorithms drive counting through a [`CountingContext`], which owns
//! the strategy knobs, the containment-test counter, and (for the vertical
//! strategy) the lazily built [`VerticalState`] whose pass-to-pass list
//! cache is the whole point of the vertical layout. One context lives for
//! one mining run and is flushed into [`MiningStats`] at the end.

use crate::arena::CandidateArena;
use crate::bitmap::BitmapState;
use crate::cast::{idx, w64};
use crate::contain::customer_contains;
use crate::dataset::{shard_ranges, Dataset, ShardScratch};
use crate::hash_tree::{SequenceHashTree, VisitSet};
use crate::stats::MiningStats;
use crate::types::transformed::{LitemsetId, TransformedCustomer};
use crate::vertical::{VerticalParams, VerticalState};
use seqpat_itemset::parallel::{map_chunks, sum_partials};
use seqpat_itemset::Parallelism;
use std::time::Duration;

/// Strategy for counting candidate supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountingStrategy {
    /// Per-candidate greedy scans with a presence-bitmap prefilter.
    Direct,
    /// The paper's candidate hash tree.
    #[default]
    HashTree,
    /// Occurrence-list merge-joins over the vertical index.
    Vertical,
    /// SPAM-style packed bitmaps with S-step extension kernels.
    Bitmap,
    /// Pick Bitmap/Vertical/HashTree from database statistics after the
    /// transformation phase (see [`auto_decide`]).
    Auto,
}

impl std::str::FromStr for CountingStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "direct" => Ok(CountingStrategy::Direct),
            "hashtree" | "hash-tree" | "hash_tree" => Ok(CountingStrategy::HashTree),
            "vertical" => Ok(CountingStrategy::Vertical),
            "bitmap" => Ok(CountingStrategy::Bitmap),
            "auto" => Ok(CountingStrategy::Auto),
            other => Err(format!(
                "unknown counting strategy '{other}' (expected direct, hashtree, vertical, bitmap, or auto)"
            )),
        }
    }
}

impl std::fmt::Display for CountingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CountingStrategy::Direct => "direct",
            CountingStrategy::HashTree => "hashtree",
            CountingStrategy::Vertical => "vertical",
            CountingStrategy::Bitmap => "bitmap",
            CountingStrategy::Auto => "auto",
        })
    }
}

/// Below this many customers any per-run index build costs more than the
/// scans it saves; Auto falls back to the paper's hash tree. Calibrated by
/// experiment E11 (see EXPERIMENTS.md).
pub const AUTO_MIN_CUSTOMERS: u64 = 64;

/// Density (occurrences ÷ (customers × litemsets)) at or above which Auto
/// picks the bitmap strategy; below it the occurrence lists are sparse
/// enough that id-list joins touch less memory than word scans. Calibrated
/// by experiment E11.
pub const AUTO_DENSITY_CROSSOVER: f64 = 0.05;

/// Hard cap on the bitmap arena Auto is willing to allocate
/// (`litemsets × words × 8` bytes); beyond it Auto routes to Vertical even
/// for dense databases.
pub const AUTO_BITMAP_CAP_BYTES: u64 = 1 << 30;

/// Rows per bounded scan slice when a statistics pass streams a
/// non-resident backend that has no explicit shard size configured.
pub const SCAN_SHARD_ROWS: usize = 65_536;

/// The statistics [`CountingStrategy::Auto`] decided from, plus the choice
/// and a human-readable reason — recorded in [`MiningStats`] so `--stats`
/// can show why a strategy was picked.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoDecision {
    /// The concrete strategy Auto resolved to.
    pub choice: CountingStrategy,
    /// Customers in the transformed database.
    pub customers: u64,
    /// Litemset alphabet size.
    pub litemsets: u64,
    /// Mean transformed sequence length (transactions per customer).
    pub mean_len: f64,
    /// Occurrences ÷ (customers × litemsets): the fill fraction of the
    /// (customer, litemset) incidence.
    pub density: f64,
    /// Bytes the bitmap arena would occupy for this database.
    pub bitmap_bytes: u64,
    /// Why the choice was made.
    pub reason: &'static str,
}

/// Picks a concrete strategy for `ds` from cheap statistics gathered in
/// one scan. The decision rule (thresholds calibrated by experiment E11):
///
/// 1. Tiny databases (under [`AUTO_MIN_CUSTOMERS`] customers, or an empty
///    alphabet) → [`CountingStrategy::HashTree`] — index builds cost more
///    than the scans they replace.
/// 2. A bitmap arena beyond [`AUTO_BITMAP_CAP_BYTES`] →
///    [`CountingStrategy::Vertical`] — long-tail databases where packed
///    words would be mostly zeros.
/// 3. Density at or above [`AUTO_DENSITY_CROSSOVER`] →
///    [`CountingStrategy::Bitmap`] — dense words amortize the S-step.
/// 4. Otherwise → [`CountingStrategy::Vertical`] — sparse occurrence lists
///    beat scanning mostly-empty words.
pub fn auto_decide(ds: &dyn Dataset) -> AutoDecision {
    let customers = w64(ds.num_rows());
    let litemsets = w64(ds.table().len());
    let mut transactions = 0u64;
    let mut occurrences = 0u64;
    let mut words = 0u64;
    // Non-resident backends are scanned in bounded slices; every statistic
    // is additive, so the decision matches a whole-database scan exactly.
    let scan = if ds.resident().is_some() {
        None
    } else {
        Some(SCAN_SHARD_ROWS)
    };
    let mut scratch = ShardScratch::new();
    for range in shard_ranges(ds.num_rows(), scan) {
        // seqpat-lint: allow(no-io-in-kernels) shard-granular read through the Dataset contract — the whole point of out-of-core counting
        for customer in ds.load_shard(range, &mut scratch) {
            transactions += w64(customer.elements.len());
            occurrences += customer.elements.iter().map(|e| w64(e.len())).sum::<u64>();
            words += w64(customer.elements.len().div_ceil(64));
        }
    }
    let mean_len = if customers == 0 {
        0.0
    } else {
        transactions as f64 / customers as f64
    };
    let density = if customers == 0 || litemsets == 0 {
        0.0
    } else {
        occurrences as f64 / (customers as f64 * litemsets as f64)
    };
    let bitmap_bytes = litemsets * words * w64(std::mem::size_of::<u64>());
    let (choice, reason) = if customers < AUTO_MIN_CUSTOMERS || litemsets == 0 {
        (
            CountingStrategy::HashTree,
            "tiny database: index build would cost more than the scans it saves",
        )
    } else if bitmap_bytes > AUTO_BITMAP_CAP_BYTES {
        (
            CountingStrategy::Vertical,
            "bitmap arena over the size cap: long-tail database, id-lists stay compact",
        )
    } else if density >= AUTO_DENSITY_CROSSOVER {
        (
            CountingStrategy::Bitmap,
            "dense database: word-parallel S-step kernels beat pointer-chasing joins",
        )
    } else {
        (
            CountingStrategy::Vertical,
            "sparse database: id-list joins touch only actual occurrences",
        )
    };
    AutoDecision {
        choice,
        customers,
        litemsets,
        mean_len,
        density,
        bitmap_bytes,
        reason,
    }
}

/// Hash-tree shape parameters (shared with the litemset phase defaults).
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Interior fanout.
    pub fanout: usize,
    /// Leaf capacity before splitting.
    pub leaf_capacity: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            fanout: 16,
            leaf_capacity: 32,
        }
    }
}

/// Counters of ephemeral per-shard index states, folded across shards (the
/// sharded path drops each shard's index before the next is built, so its
/// counters survive here until [`CountingContext::flush_into`]).
#[derive(Debug, Default)]
struct ShardCounters {
    vertical_index_time: Duration,
    joins: u64,
    gallop_skips: u64,
    vertical_peak_bytes: u64,
    bitmap_index_time: Duration,
    sstep_ops: u64,
    lane_words: u64,
    carry_fixups: u64,
    bitmap_words: u64,
}

/// Per-mining-run counting state: strategy knobs, the cost counters, and
/// the vertical index/list-cache (built lazily on the first vertical
/// count). Create one per run via `SequencePhaseOptions::context`, thread
/// it through every pass, and [`CountingContext::flush_into`] the run's
/// [`MiningStats`] once at the end.
///
/// With a shard size set (see [`CountingContext::with_shard_customers`]),
/// every counting pass streams the dataset shard by shard: each shard's
/// rows are loaded, its scratch index built, counted, and dropped before
/// the next shard, so peak memory is proportional to one shard rather than
/// the whole database — and the per-shard partial counts are summed in
/// shard order by the same exact-integer reducer that merges per-thread
/// partials, keeping sharded supports bit-identical to unsharded ones.
#[derive(Debug)]
pub struct CountingContext {
    strategy: CountingStrategy,
    /// The concrete strategy counts dispatch to: equal to `strategy` when
    /// explicit, filled by [`auto_decide`] on first use for `Auto`.
    resolved: Option<CountingStrategy>,
    auto_decision: Option<AutoDecision>,
    tree_params: TreeParams,
    parallelism: Parallelism,
    vertical_params: VerticalParams,
    /// Rows per counting shard; `None` counts the whole database at once.
    shard_customers: Option<usize>,
    vertical: Option<VerticalState>,
    bitmap: Option<BitmapState>,
    /// Decode-once row cache for non-resident backends counted unsharded.
    whole: ShardScratch,
    whole_loaded: bool,
    shard: ShardCounters,
    /// Exact containment tests executed so far (horizontal strategies and
    /// the on-the-fly pass).
    pub containment_tests: u64,
    /// Flat hash-tree nodes visited by probes so far (thread-invariant:
    /// the per-customer probe is a pure function of the data).
    pub probe_nodes: u64,
    /// Shard loads performed through this context (0 when counting a
    /// resident database unsharded).
    pub shards_processed: u64,
    /// Bytes of customer rows covered by those shard loads.
    pub shard_bytes: u64,
}

impl CountingContext {
    /// A fresh context; no index is built until the first vertical or
    /// bitmap count, and `Auto` decides on first use.
    pub fn new(
        strategy: CountingStrategy,
        tree_params: TreeParams,
        parallelism: Parallelism,
        vertical_params: VerticalParams,
    ) -> Self {
        Self {
            strategy,
            resolved: None,
            auto_decision: None,
            tree_params,
            parallelism,
            vertical_params,
            shard_customers: None,
            vertical: None,
            bitmap: None,
            whole: ShardScratch::new(),
            whole_loaded: false,
            shard: ShardCounters::default(),
            containment_tests: 0,
            probe_nodes: 0,
            shards_processed: 0,
            shard_bytes: 0,
        }
    }

    /// Sets the shard size for shard-by-shard counting (builder-style);
    /// `None` or a size covering the whole dataset counts unsharded.
    pub fn with_shard_customers(mut self, shard_customers: Option<usize>) -> Self {
        self.shard_customers = shard_customers;
        self
    }

    /// The strategy this context was configured with (possibly `Auto`).
    pub fn strategy(&self) -> CountingStrategy {
        self.strategy
    }

    /// The configured shard size (rows per counting shard), if any.
    pub fn shard_customers(&self) -> Option<usize> {
        self.shard_customers
    }

    /// The concrete strategy counts dispatch to, resolving `Auto` from
    /// `ds` statistics on first call (the decision then sticks for the
    /// whole run — the transformed database never changes mid-run).
    pub fn resolved_strategy(&mut self, ds: &dyn Dataset) -> CountingStrategy {
        if let Some(resolved) = self.resolved {
            return resolved;
        }
        let resolved = match self.strategy {
            CountingStrategy::Auto => {
                let decision = auto_decide(ds);
                let choice = decision.choice;
                self.auto_decision = Some(decision);
                choice
            }
            CountingStrategy::Direct
            | CountingStrategy::HashTree
            | CountingStrategy::Vertical
            | CountingStrategy::Bitmap => self.strategy,
        };
        self.resolved = Some(resolved);
        resolved
    }

    /// The full row slice — resident, or decoded once into the context's
    /// scratch and retained for the rest of the run.
    fn whole_rows<'a>(&'a mut self, ds: &'a dyn Dataset) -> &'a [TransformedCustomer] {
        match ds.resident() {
            Some(rows) => rows,
            None => {
                if !self.whole_loaded {
                    self.whole.clear();
                    // seqpat-lint: allow(no-io-in-kernels) one whole-table load through the Dataset contract when everything fits in memory
                    ds.load_shard(0..ds.num_rows(), &mut self.whole);
                    self.whole_loaded = true;
                    self.shards_processed += 1;
                    // seqpat-lint: allow(no-io-in-kernels) byte accounting for the load above, read once from shard metadata
                    self.shard_bytes += ds.shard_bytes(0..ds.num_rows());
                }
                self.whole.rows()
            }
        }
    }

    /// Counts the support of every candidate in the arena. See
    /// [`count_supports`] for the contract; unsharded, the vertical
    /// strategy additionally reuses (and refreshes) the pass-to-pass list
    /// cache, while a configured shard size routes through the
    /// shard-by-shard loop (bit-identical supports, O(shard) peak memory).
    pub fn count(&mut self, ds: &dyn Dataset, candidates: &CandidateArena) -> Vec<u64> {
        let threads = self.parallelism.resolved_threads();
        let strategy = self.resolved_strategy(ds);
        let num_litemsets = ds.table().len();
        let ranges = shard_ranges(ds.num_rows(), self.shard_customers);
        if ranges.len() > 1 {
            return self.count_sharded(ds, candidates, strategy, threads, num_litemsets, ranges);
        }
        match strategy {
            CountingStrategy::Direct => {
                let rows = self.whole_rows(ds);
                let (supports, tests) =
                    count_direct_slice(rows, num_litemsets, candidates, threads);
                self.containment_tests += tests;
                supports
            }
            CountingStrategy::HashTree => {
                let tree = SequenceHashTree::build(
                    candidates,
                    self.tree_params.fanout,
                    self.tree_params.leaf_capacity,
                );
                let rows = self.whole_rows(ds);
                let (supports, tests, probes) = probe_hash_tree(rows, &tree, candidates, threads);
                self.containment_tests += tests;
                self.probe_nodes += probes;
                supports
            }
            CountingStrategy::Vertical => self.vertical_state(ds).count(candidates, threads),
            CountingStrategy::Bitmap => self.bitmap_state(ds).count(candidates, threads),
            // seqpat-lint: allow(no-panic-in-kernels) resolved_strategy maps Auto to a concrete choice before this match, so the arm cannot be reached
            CountingStrategy::Auto => unreachable!("Auto resolves to a concrete strategy"),
        }
    }

    /// The shard-by-shard counting loop: per shard, load the rows, count
    /// them with throwaway scratch state (index builds included), fold the
    /// scratch counters, and sum the partial supports in shard order. The
    /// partials feed the reducer lazily, so only one shard's rows and
    /// index are alive at any time.
    fn count_sharded(
        &mut self,
        ds: &dyn Dataset,
        candidates: &CandidateArena,
        strategy: CountingStrategy,
        threads: usize,
        num_litemsets: usize,
        ranges: Vec<std::ops::Range<usize>>,
    ) -> Vec<u64> {
        let n = candidates.num_candidates();
        // The hash tree depends only on the candidates: built once, probed
        // over every shard.
        let tree = match strategy {
            CountingStrategy::HashTree => Some(SequenceHashTree::build(
                candidates,
                self.tree_params.fanout,
                self.tree_params.leaf_capacity,
            )),
            CountingStrategy::Direct
            | CountingStrategy::Vertical
            | CountingStrategy::Bitmap
            | CountingStrategy::Auto => None,
        };
        let mut scratch = ShardScratch::new();
        sum_partials(
            ranges.into_iter().map(|range| {
                self.shards_processed += 1;
                // seqpat-lint: allow(no-alloc-in-hot-loop, no-io-in-kernels) once per shard, not per row; a Range clone is two word copies
                self.shard_bytes += ds.shard_bytes(range.clone());
                // seqpat-lint: allow(no-io-in-kernels) shard-granular read through the Dataset contract — the whole point of out-of-core counting
                let rows = ds.load_shard(range, &mut scratch);
                match strategy {
                    CountingStrategy::Direct => {
                        let (supports, tests) =
                            // seqpat-lint: allow(no-alloc-in-hot-loop) counter scratch is sized once per shard, not per row
                            count_direct_slice(rows, num_litemsets, candidates, threads);
                        self.containment_tests += tests;
                        supports
                    }
                    CountingStrategy::HashTree => {
                        let (supports, tests, probes) = match &tree {
                            // seqpat-lint: allow(no-alloc-in-hot-loop) probe scratch is sized once per shard, not per row
                            Some(tree) => probe_hash_tree(rows, tree, candidates, threads),
                            // Unreachable by construction (the tree is
                            // built above for this strategy); zero counts
                            // keep the arm panic-free.
                            // seqpat-lint: allow(no-alloc-in-hot-loop) dead arm kept only to avoid a panic site
                            None => (vec![0u64; n], 0, 0),
                        };
                        self.containment_tests += tests;
                        self.probe_nodes += probes;
                        supports
                    }
                    CountingStrategy::Vertical => {
                        // cache_cap_bytes = 0: the state dies with the
                        // shard, so list retention would only waste the
                        // shard's memory budget.
                        // seqpat-lint: allow(no-alloc-in-hot-loop) the vertical index is built once per shard, not per row
                        let mut state = VerticalState::build_slice(
                            rows,
                            num_litemsets,
                            VerticalParams { cache_cap_bytes: 0 },
                        );
                        let supports = state.count(candidates, threads);
                        self.shard.vertical_index_time += state.index_build_time;
                        self.shard.joins += state.joins;
                        self.shard.gallop_skips += state.gallop_skips;
                        self.shard.vertical_peak_bytes =
                            self.shard.vertical_peak_bytes.max(state.peak_bytes);
                        supports
                    }
                    CountingStrategy::Bitmap => {
                        // seqpat-lint: allow(no-alloc-in-hot-loop) the bitmap index is built once per shard, not per row
                        let mut state = BitmapState::build_slice(rows, num_litemsets);
                        let supports = state.count(candidates, threads);
                        self.shard.bitmap_index_time += state.index_build_time;
                        self.shard.sstep_ops += state.sstep_ops;
                        self.shard.lane_words += state.lane_words;
                        self.shard.carry_fixups += state.carry_fixups;
                        self.shard.bitmap_words =
                            self.shard.bitmap_words.max(state.index().words());
                        supports
                    }
                    CountingStrategy::Auto => {
                        // seqpat-lint: allow(no-panic-in-kernels) resolved_strategy maps Auto to a concrete choice before this match, so the arm cannot be reached
                        unreachable!("Auto resolves to a concrete strategy")
                    }
                }
            }),
            n,
        )
    }

    /// The pass-2 fast path through this context: shard-aware, with shard
    /// loads recorded in the context's counters. See
    /// [`large_two_sequences`] for the counting contract.
    pub fn large_two(
        &mut self,
        ds: &dyn Dataset,
        min_count: u64,
    ) -> (u64, Vec<crate::phases::maximal::LargeIdSequence>) {
        large_two_sharded(
            ds,
            min_count,
            self.parallelism,
            self.shard_customers,
            &mut self.containment_tests,
            &mut self.shards_processed,
            &mut self.shard_bytes,
        )
    }

    /// The vertical state over the whole database, building the occurrence
    /// index on first use. Valid for any strategy (DynamicSome's
    /// on-the-fly pass uses it only when the resolved strategy is
    /// vertical).
    pub fn vertical_state(&mut self, ds: &dyn Dataset) -> &mut VerticalState {
        let state = match self.vertical.take() {
            Some(state) => state,
            None => {
                let params = self.vertical_params;
                let num_litemsets = ds.table().len();
                let rows = self.whole_rows(ds);
                VerticalState::build_slice(rows, num_litemsets, params)
            }
        };
        self.vertical.insert(state)
    }

    /// The bitmap state over the whole database, building the packed index
    /// on first use.
    pub fn bitmap_state(&mut self, ds: &dyn Dataset) -> &mut BitmapState {
        let state = match self.bitmap.take() {
            Some(state) => state,
            None => {
                let num_ids = ds.table().len();
                let rows = self.whole_rows(ds);
                BitmapState::build_slice(rows, num_ids)
            }
        };
        self.bitmap.insert(state)
    }

    /// Adds this run's counters into `stats` (take-semantics: flushing
    /// twice adds nothing twice).
    pub fn flush_into(&mut self, stats: &mut MiningStats) {
        stats.containment_tests += std::mem::take(&mut self.containment_tests);
        stats.probe_nodes += std::mem::take(&mut self.probe_nodes);
        stats.shards_processed += std::mem::take(&mut self.shards_processed);
        stats.shard_bytes += std::mem::take(&mut self.shard_bytes);
        if let Some(state) = &mut self.vertical {
            stats.vertical_index_time += std::mem::take(&mut state.index_build_time);
            stats.join_ops += std::mem::take(&mut state.joins);
            stats.gallop_skips += std::mem::take(&mut state.gallop_skips);
            stats.vertical_peak_bytes = stats.vertical_peak_bytes.max(state.peak_bytes);
        }
        if let Some(state) = &mut self.bitmap {
            stats.bitmap_index_time += std::mem::take(&mut state.index_build_time);
            stats.sstep_ops += std::mem::take(&mut state.sstep_ops);
            stats.lane_words += std::mem::take(&mut state.lane_words);
            stats.carry_fixups += std::mem::take(&mut state.carry_fixups);
            stats.bitmap_words = stats.bitmap_words.max(state.index().words());
        }
        let shard = std::mem::take(&mut self.shard);
        stats.vertical_index_time += shard.vertical_index_time;
        stats.join_ops += shard.joins;
        stats.gallop_skips += shard.gallop_skips;
        stats.vertical_peak_bytes = stats.vertical_peak_bytes.max(shard.vertical_peak_bytes);
        stats.bitmap_index_time += shard.bitmap_index_time;
        stats.sstep_ops += shard.sstep_ops;
        stats.lane_words += shard.lane_words;
        stats.carry_fixups += shard.carry_fixups;
        stats.bitmap_words = stats.bitmap_words.max(shard.bitmap_words);
        if self.auto_decision.is_some() {
            stats.auto_decision = self.auto_decision.take();
        }
    }
}

/// Counts the support of every candidate, sharding work over the workers
/// `parallelism` resolves to. Returns per-candidate customer counts and
/// adds the number of exact containment tests to `containment_tests`; both
/// are bit-identical across thread counts.
///
/// One-shot entry point (bench kernels, tests): the vertical strategy
/// builds a throwaway index here, so algorithm code goes through
/// [`CountingContext`] instead to amortize it across passes.
pub fn count_supports(
    ds: &dyn Dataset,
    candidates: &CandidateArena,
    strategy: CountingStrategy,
    tree_params: TreeParams,
    parallelism: Parallelism,
    containment_tests: &mut u64,
) -> Vec<u64> {
    let mut ctx = CountingContext::new(
        strategy,
        tree_params,
        parallelism,
        VerticalParams::default(),
    );
    let supports = ctx.count(ds, candidates);
    *containment_tests += ctx.containment_tests;
    supports
}

/// Sums per-chunk `(supports, tests)` results in chunk order via the
/// workspace-wide [`sum_partials`] reducer; exact `u64` addition makes the
/// totals independent of the chunking.
fn merge_counts(
    partials: Vec<(Vec<u64>, u64)>,
    num_candidates: usize,
    containment_tests: &mut u64,
) -> Vec<u64> {
    sum_partials(
        partials.into_iter().map(|(partial, tests)| {
            *containment_tests += tests;
            partial
        }),
        num_candidates,
    )
}

/// Direct counting over a row slice (one shard or the whole database).
/// Returns `(supports, containment_tests)` — both exact sums, so callers
/// can add the partials of consecutive shards in shard order and land on
/// the unsharded totals bit for bit.
fn count_direct_slice(
    customers: &[TransformedCustomer],
    num_litemsets: usize,
    candidates: &CandidateArena,
    threads: usize,
) -> (Vec<u64>, u64) {
    let n = candidates.num_candidates();
    debug_assert!(
        customers
            .iter()
            .flat_map(|c| &c.elements)
            .flatten()
            .all(|&id| idx(id) < num_litemsets),
        "every transformed litemset id indexes the presence bitmap"
    );
    debug_assert!(
        candidates
            .iter()
            .flatten()
            .all(|&id| idx(id) < num_litemsets),
        "every candidate id indexes the presence bitmap"
    );
    let partials = map_chunks(customers, threads, |chunk| {
        let mut supports = vec![0u64; n];
        let mut tests = 0u64;
        let mut bitmap = vec![false; num_litemsets];
        for customer in chunk {
            if customer.elements.is_empty() {
                continue;
            }
            bitmap.iter_mut().for_each(|b| *b = false);
            for element in &customer.elements {
                for &id in element {
                    bitmap[idx(id)] = true;
                }
            }
            for (slot, cand) in candidates.iter().enumerate() {
                if cand.len() > customer.elements.len() {
                    continue;
                }
                if !cand.iter().all(|&id| bitmap[idx(id)]) {
                    continue;
                }
                tests += 1;
                if customer_contains(customer, cand) {
                    supports[slot] += 1;
                }
            }
        }
        (supports, tests)
    });
    let mut tests_total = 0u64;
    let supports = merge_counts(partials, n, &mut tests_total);
    (supports, tests_total)
}

/// Fast path for pass 2 (the candidate set is always **all** `|L1|²`
/// ordered litemset pairs — the join over 1-sequences is total and the
/// prune vacuous): count every pair `⟨a b⟩` directly while scanning each
/// customer once, instead of probing millions of candidates through the
/// hash tree. This mirrors the special-cased second pass of the original
/// Apriori implementations (a count array instead of a tree). All three
/// strategies share it, so pass-2 cost is strategy-independent.
///
/// Returns `(number_of_candidate_pairs, large_two_sequences)` with the
/// large sequences in lexicographic id order. `containment_tests` is
/// incremented once per distinct `(a, b)` pair observed per customer.
///
/// Customers are sharded over the workers `parallelism` resolves to, each
/// with a private `PairCounts` (dense workers cost `n²` u32 apiece —
/// bounded by `DENSE_LIMIT` at 64 MiB per worker), merged in chunk order.
pub fn large_two_sequences(
    ds: &dyn Dataset,
    min_count: u64,
    parallelism: Parallelism,
    containment_tests: &mut u64,
) -> (u64, Vec<crate::phases::maximal::LargeIdSequence>) {
    let mut shards = 0u64;
    let mut bytes = 0u64;
    large_two_sharded(
        ds,
        min_count,
        parallelism,
        None,
        containment_tests,
        &mut shards,
        &mut bytes,
    )
}

/// Shard-aware body of [`large_two_sequences`]: counts pairs one shard at
/// a time, merging each shard's per-chunk `PairCounts` in chunk order, then
/// shards in shard order — exact integer merges, so the totals match the
/// unsharded run bit for bit. Shard-load statistics are recorded only when
/// rows actually stream (multiple shards, or a non-resident backend).
fn large_two_sharded(
    ds: &dyn Dataset,
    min_count: u64,
    parallelism: Parallelism,
    shard_customers: Option<usize>,
    containment_tests: &mut u64,
    shards_processed: &mut u64,
    shard_bytes: &mut u64,
) -> (u64, Vec<crate::phases::maximal::LargeIdSequence>) {
    let n = ds.table().len();
    let candidates = w64(n) * w64(n);
    let threads = parallelism.resolved_threads();
    let ranges = shard_ranges(ds.num_rows(), shard_customers);
    let streaming = ranges.len() > 1 || ds.resident().is_none();
    let mut counts = PairCounts::new(n);
    let mut scratch = ShardScratch::new();
    for range in ranges {
        if streaming {
            *shards_processed += 1;
            // seqpat-lint: allow(no-io-in-kernels) byte accounting read once from shard metadata
            *shard_bytes += ds.shard_bytes(range.clone());
        }
        // seqpat-lint: allow(no-io-in-kernels) shard-granular read through the Dataset contract — the whole point of out-of-core counting
        let rows = ds.load_shard(range, &mut scratch);
        let partials = map_chunks(rows, threads, |chunk| {
            let mut counts = PairCounts::new(n);
            let mut tests = 0u64;
            // Per-customer pair set: collect, sort, dedup, then bump counts.
            let mut pairs: Vec<(LitemsetId, LitemsetId)> = Vec::new();
            let mut seen_before: Vec<LitemsetId> = Vec::new();
            for customer in chunk {
                if customer.elements.len() < 2 {
                    continue;
                }
                pairs.clear();
                seen_before.clear();
                for element in &customer.elements {
                    if !seen_before.is_empty() {
                        for &b in element {
                            for &a in &seen_before {
                                pairs.push((a, b));
                            }
                        }
                    }
                    seen_before.extend_from_slice(element);
                    seen_before.sort_unstable();
                    seen_before.dedup();
                }
                pairs.sort_unstable();
                pairs.dedup();
                tests += w64(pairs.len());
                for &(a, b) in &pairs {
                    counts.bump(a, b);
                }
            }
            (counts, tests)
        });
        for (partial, tests) in partials {
            counts.merge(partial);
            *containment_tests += tests;
        }
    }
    (candidates, counts.into_large(min_count))
}

/// Pair-count storage: dense `n×n` matrix for small alphabets, hash map
/// beyond (a 4096-litemset alphabet already needs 64 MiB dense).
enum PairCounts {
    Dense { n: usize, counts: Vec<u32> },
    Sparse(crate::fxhash::FxHashMap<(LitemsetId, LitemsetId), u32>),
}

impl PairCounts {
    const DENSE_LIMIT: usize = 4096;

    fn new(n: usize) -> Self {
        if n <= Self::DENSE_LIMIT {
            PairCounts::Dense {
                n,
                counts: vec![0; n * n],
            }
        } else {
            PairCounts::Sparse(crate::fxhash::FxHashMap::default())
        }
    }

    fn bump(&mut self, a: LitemsetId, b: LitemsetId) {
        match self {
            PairCounts::Dense { n, counts } => {
                debug_assert!(
                    idx(a) < *n && idx(b) < *n,
                    "pair ids come from the n-litemset alphabet"
                );
                counts[idx(a) * *n + idx(b)] += 1;
            }
            PairCounts::Sparse(map) => *map.entry((a, b)).or_insert(0) += 1,
        }
    }

    /// Adds another worker's counts into this one. The variant is a pure
    /// function of `n`, so chunks always agree on the storage shape.
    fn merge(&mut self, other: PairCounts) {
        match (self, other) {
            (PairCounts::Dense { counts, .. }, PairCounts::Dense { counts: o, .. }) => {
                for (total, v) in counts.iter_mut().zip(o) {
                    *total += v;
                }
            }
            (PairCounts::Sparse(map), PairCounts::Sparse(o)) => {
                for (pair, v) in o {
                    *map.entry(pair).or_insert(0) += v;
                }
            }
            // seqpat-lint: allow(no-panic-in-kernels) the variant is a pure function of n (see new), and merge only joins counters built for the same alphabet
            _ => unreachable!("PairCounts variants diverged for one alphabet size"),
        }
    }

    fn into_large(self, min_count: u64) -> Vec<crate::phases::maximal::LargeIdSequence> {
        use crate::cast::id32;
        use crate::phases::maximal::LargeIdSequence;
        let mut out = Vec::new();
        match self {
            PairCounts::Dense { n, counts } => {
                debug_assert!(counts.len() == n * n, "dense matrix is n×n");
                for a in 0..n {
                    for b in 0..n {
                        let c = u64::from(counts[a * n + b]);
                        if c >= min_count {
                            out.push(LargeIdSequence {
                                // seqpat-lint: allow(no-alloc-in-hot-loop) one owned ids vec per emitted large sequence — output-proportional, not input-proportional
                                ids: vec![id32(a), id32(b)],
                                support: c,
                            });
                        }
                    }
                }
            }
            PairCounts::Sparse(map) => {
                let mut entries: Vec<_> = map
                    .into_iter()
                    .filter(|&(_, c)| u64::from(c) >= min_count)
                    .collect();
                entries.sort_unstable_by_key(|&((a, b), _)| (a, b));
                out.extend(entries.into_iter().map(|((a, b), c)| LargeIdSequence {
                    // seqpat-lint: allow(no-alloc-in-hot-loop) one owned ids vec per emitted large sequence — output-proportional, not input-proportional
                    ids: vec![a, b],
                    support: u64::from(c),
                }));
            }
        }
        out
    }
}

/// Probes a prebuilt hash tree over a row slice (one shard or the whole
/// database). Returns `(supports, containment_tests, probe_nodes)`; the
/// tree depends only on the candidate set, so the sharded path builds it
/// once and probes it over every shard.
fn probe_hash_tree(
    customers: &[TransformedCustomer],
    tree: &SequenceHashTree,
    candidates: &CandidateArena,
    threads: usize,
) -> (Vec<u64>, u64, u64) {
    let n = candidates.num_candidates();
    let partials = map_chunks(customers, threads, |chunk| {
        let mut supports = vec![0u64; n];
        let mut tests = 0u64;
        let mut probes = 0u64;
        let mut seen = VisitSet::new(n);
        for customer in chunk {
            tree.for_each_contained(
                customer,
                candidates,
                &mut seen,
                &mut tests,
                &mut probes,
                &mut |id| {
                    debug_assert!(idx(id) < n, "the tree only yields candidate slots below n");
                    supports[idx(id)] += 1;
                },
            );
        }
        (supports, tests, probes)
    });
    let mut tests_total = 0u64;
    let mut probes_total = 0u64;
    let supports = merge_counts(
        partials
            .into_iter()
            .map(|(supports, tests, probes)| {
                probes_total += probes;
                (supports, tests)
            })
            .collect(),
        n,
        &mut tests_total,
    );
    (supports, tests_total, probes_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::itemset::Itemset;
    use crate::types::transformed::{LitemsetTable, TransformedCustomer, TransformedDatabase};

    fn arena(rows: &[Vec<LitemsetId>]) -> CandidateArena {
        CandidateArena::from_rows(
            rows.first().map_or(0, |r| r.len()),
            rows.iter().map(|r| r.as_slice()),
        )
    }

    fn tdb() -> TransformedDatabase {
        let table = LitemsetTable::new(
            (0..5u32)
                .map(|i| (Itemset::new(vec![i + 1]), 3))
                .collect::<Vec<_>>(),
        );
        let mk = |id: u64, elements: Vec<Vec<LitemsetId>>| TransformedCustomer {
            customer_id: id,
            elements,
        };
        TransformedDatabase {
            customers: vec![
                mk(1, vec![vec![0], vec![4]]),
                mk(2, vec![vec![0], vec![1, 2, 3]]),
                mk(3, vec![vec![0, 3]]),
                mk(4, vec![vec![0], vec![1, 2, 3], vec![4]]),
                mk(5, vec![vec![4]]),
                mk(6, vec![]), // empty after transformation
            ],
            table,
            total_customers: 6,
        }
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [
            CountingStrategy::Direct,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
            CountingStrategy::Bitmap,
            CountingStrategy::Auto,
        ] {
            assert_eq!(s.to_string().parse::<CountingStrategy>(), Ok(s));
        }
        assert_eq!("hash-tree".parse(), Ok(CountingStrategy::HashTree));
        assert_eq!("hash_tree".parse(), Ok(CountingStrategy::HashTree));
        assert!("sideways".parse::<CountingStrategy>().is_err());
    }

    #[test]
    fn strategies_agree_and_count_correctly() {
        let db = tdb();
        let candidates = arena(&[
            vec![0, 1], // customers 2 and 4
            vec![0, 3], // customers 2, 4 (not 3: same transaction)
            vec![0, 4], // customers 1 and 4
            vec![4, 0], // nobody
        ]);
        let mut t1 = 0;
        let direct = count_supports(
            &db,
            &candidates,
            CountingStrategy::Direct,
            TreeParams::default(),
            Parallelism::Serial,
            &mut t1,
        );
        let mut t2 = 0;
        let tree = count_supports(
            &db,
            &candidates,
            CountingStrategy::HashTree,
            TreeParams::default(),
            Parallelism::Serial,
            &mut t2,
        );
        let mut t3 = 0;
        let vertical = count_supports(
            &db,
            &candidates,
            CountingStrategy::Vertical,
            TreeParams::default(),
            Parallelism::Serial,
            &mut t3,
        );
        let mut t4 = 0;
        let bitmap = count_supports(
            &db,
            &candidates,
            CountingStrategy::Bitmap,
            TreeParams::default(),
            Parallelism::Serial,
            &mut t4,
        );
        let mut t5 = 0;
        let auto = count_supports(
            &db,
            &candidates,
            CountingStrategy::Auto,
            TreeParams::default(),
            Parallelism::Serial,
            &mut t5,
        );
        assert_eq!(direct, vec![2, 2, 2, 0]);
        assert_eq!(tree, direct);
        assert_eq!(vertical, direct);
        assert_eq!(bitmap, direct);
        assert_eq!(auto, direct);
        assert!(t1 > 0);
        assert!(t2 > 0);
        assert_eq!(t3, 0); // vertical performs joins, not containment tests
        assert_eq!(t4, 0); // bitmap performs word smears, not containment tests
    }

    #[test]
    fn auto_picks_hashtree_for_tiny_databases() {
        let decision = auto_decide(&tdb());
        assert_eq!(decision.choice, CountingStrategy::HashTree);
        assert_eq!(decision.customers, 6);
        assert_eq!(decision.litemsets, 5);
        assert!(decision.density > 0.0);
    }

    /// A synthetic transformed database: `customers` customers, each with
    /// `len` transactions of one element drawn round-robin from `ids` ids.
    fn synth_tdb(customers: usize, len: usize, ids: u32) -> TransformedDatabase {
        let table = LitemsetTable::new(
            (0..ids)
                .map(|i| (Itemset::new(vec![i + 1]), 1))
                .collect::<Vec<_>>(),
        );
        TransformedDatabase {
            customers: (0..customers)
                .map(|c| TransformedCustomer {
                    customer_id: c as u64 + 1,
                    elements: (0..len).map(|t| vec![((c + t) as u32) % ids]).collect(),
                })
                .collect(),
            table,
            total_customers: customers,
        }
    }

    #[test]
    fn auto_picks_bitmap_for_dense_and_vertical_for_sparse() {
        // 100 customers × 8 transactions over 4 ids: density 8/4 = 2.0.
        let dense = auto_decide(&synth_tdb(100, 8, 4));
        assert_eq!(dense.choice, CountingStrategy::Bitmap);
        assert!(dense.density >= AUTO_DENSITY_CROSSOVER);
        // 100 customers × 3 transactions over 1000 ids: density 0.003.
        let sparse = auto_decide(&synth_tdb(100, 3, 1000));
        assert_eq!(sparse.choice, CountingStrategy::Vertical);
        assert!(sparse.density < AUTO_DENSITY_CROSSOVER);
    }

    #[test]
    fn auto_resolution_is_recorded_and_sticks() {
        let db = synth_tdb(100, 8, 4);
        let mut ctx = CountingContext::new(
            CountingStrategy::Auto,
            TreeParams::default(),
            Parallelism::Serial,
            VerticalParams::default(),
        );
        assert_eq!(ctx.strategy(), CountingStrategy::Auto);
        assert_eq!(ctx.resolved_strategy(&db), CountingStrategy::Bitmap);
        let _ = ctx.count(&db, &arena(&[vec![0, 1]]));
        let mut stats = MiningStats::default();
        ctx.flush_into(&mut stats);
        let decision = stats.auto_decision.expect("auto decision recorded");
        assert_eq!(decision.choice, CountingStrategy::Bitmap);
        assert!(stats.bitmap_words > 0);
    }

    #[test]
    fn bitmap_prefilter_skips_impossible_candidates() {
        let db = tdb();
        // Candidate needs ids {2, 4}; only customer 4 has both, so exactly
        // one exact containment test may run.
        let mut tests = 0;
        let supports = count_supports(
            &db,
            &arena(&[vec![2, 4]]),
            CountingStrategy::Direct,
            TreeParams::default(),
            Parallelism::Serial,
            &mut tests,
        );
        assert_eq!(supports, vec![1]); // only customer 4
        assert_eq!(tests, 1);
    }

    #[test]
    fn empty_candidate_list() {
        let db = tdb();
        for strategy in [
            CountingStrategy::Direct,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
            CountingStrategy::Bitmap,
            CountingStrategy::Auto,
        ] {
            let mut tests = 0;
            let supports = count_supports(
                &db,
                &CandidateArena::default(),
                strategy,
                TreeParams::default(),
                Parallelism::Serial,
                &mut tests,
            );
            assert!(supports.is_empty());
            assert_eq!(tests, 0);
        }
    }

    #[test]
    fn context_flush_moves_counters_into_stats_once() {
        let db = tdb();
        let mut ctx = CountingContext::new(
            CountingStrategy::Vertical,
            TreeParams::default(),
            Parallelism::Serial,
            VerticalParams::default(),
        );
        let supports = ctx.count(&db, &arena(&[vec![0, 1], vec![0, 4]]));
        assert_eq!(supports, vec![2, 2]);
        let mut stats = MiningStats::default();
        ctx.flush_into(&mut stats);
        assert!(stats.join_ops > 0);
        assert!(stats.vertical_peak_bytes > 0);
        let joins = stats.join_ops;
        ctx.flush_into(&mut stats); // idempotent: nothing left to add
        assert_eq!(stats.join_ops, joins);
    }

    #[test]
    fn fast_pair_counting_matches_generic_counting() {
        let db = tdb();
        let mut t = 0;
        let (n_candidates, l2) = large_two_sequences(&db, 2, Parallelism::Serial, &mut t);
        assert_eq!(n_candidates, 25);
        // Cross-check against generic counting of all ordered pairs.
        let all_pairs: Vec<Vec<LitemsetId>> = (0..5)
            .flat_map(|a| (0..5).map(move |b| vec![a, b]))
            .collect();
        let mut t2 = 0;
        let generic = count_supports(
            &db,
            &arena(&all_pairs),
            CountingStrategy::Direct,
            TreeParams::default(),
            Parallelism::Serial,
            &mut t2,
        );
        let expected: Vec<(Vec<LitemsetId>, u64)> = all_pairs
            .into_iter()
            .zip(generic)
            .filter(|&(_, c)| c >= 2)
            .collect();
        let got: Vec<(Vec<LitemsetId>, u64)> = l2.into_iter().map(|s| (s.ids, s.support)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn fast_pair_counting_handles_repeats_within_customer() {
        // One customer with id 0 in three transactions: pair (0,0) counted
        // once for the customer.
        use crate::types::itemset::Itemset;
        use crate::types::transformed::{LitemsetTable, TransformedCustomer};
        let table = LitemsetTable::new(vec![(Itemset::new(vec![1]), 1)]);
        let db = TransformedDatabase {
            customers: vec![TransformedCustomer {
                customer_id: 1,
                elements: vec![vec![0], vec![0], vec![0]],
            }],
            table,
            total_customers: 1,
        };
        let mut t = 0;
        let (_, l2) = large_two_sequences(&db, 1, Parallelism::Serial, &mut t);
        assert_eq!(l2.len(), 1);
        assert_eq!(l2[0].ids, vec![0, 0]);
        assert_eq!(l2[0].support, 1);
        assert_eq!(t, 1);
    }

    #[test]
    fn small_fanout_and_leaf_capacity_still_agree() {
        let db = tdb();
        let candidates = arena(&[vec![0, 1], vec![0, 2], vec![0, 3], vec![0, 4], vec![1, 4]]);
        let mut t = 0;
        let a = count_supports(
            &db,
            &candidates,
            CountingStrategy::HashTree,
            TreeParams {
                fanout: 2,
                leaf_capacity: 1,
            },
            Parallelism::Serial,
            &mut t,
        );
        let mut t2 = 0;
        let b = count_supports(
            &db,
            &candidates,
            CountingStrategy::Direct,
            TreeParams::default(),
            Parallelism::Serial,
            &mut t2,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_counting_matches_serial_on_fixture() {
        let db = tdb();
        let candidates = arena(&[vec![0, 1], vec![0, 2], vec![0, 3], vec![0, 4], vec![4, 0]]);
        for strategy in [
            CountingStrategy::Direct,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
            CountingStrategy::Bitmap,
            CountingStrategy::Auto,
        ] {
            let mut serial_tests = 0;
            let serial = count_supports(
                &db,
                &candidates,
                strategy,
                TreeParams::default(),
                Parallelism::Serial,
                &mut serial_tests,
            );
            for threads in [2, 3, 7, 64] {
                let mut tests = 0;
                let parallel = count_supports(
                    &db,
                    &candidates,
                    strategy,
                    TreeParams::default(),
                    Parallelism::threads(threads),
                    &mut tests,
                );
                assert_eq!(parallel, serial, "{strategy:?} with {threads} threads");
                assert_eq!(tests, serial_tests, "{strategy:?} with {threads} threads");
            }
        }
        let mut serial_tests = 0;
        let serial = large_two_sequences(&db, 2, Parallelism::Serial, &mut serial_tests);
        for threads in [2, 3, 7, 64] {
            let mut tests = 0;
            let parallel = large_two_sequences(&db, 2, Parallelism::threads(threads), &mut tests);
            assert_eq!(parallel, serial);
            assert_eq!(tests, serial_tests);
        }
    }
}

/// Property tests pinning the tentpole guarantee: for any generated
/// database and candidate set, every thread count produces supports and
/// cost counters bit-identical to the serial run, for every counting
/// strategy (including `Auto`) — and the strategies agree with each other.
#[cfg(test)]
mod proptests {
    use super::*;
    use crate::types::itemset::Itemset;
    use crate::types::transformed::{LitemsetTable, TransformedCustomer, TransformedDatabase};
    use proptest::prelude::*;

    const NUM_LITEMSETS: usize = 6;

    /// Builds a transformed database from generated raw shape data. The
    /// customer list may be empty, and individual customers may have no
    /// elements at all.
    fn build_tdb(raw: Vec<Vec<Vec<u8>>>) -> TransformedDatabase {
        let table = LitemsetTable::new(
            (0..NUM_LITEMSETS as u32)
                .map(|i| (Itemset::new(vec![i + 1]), 1))
                .collect::<Vec<_>>(),
        );
        let total = raw.len();
        let customers = raw
            .into_iter()
            .enumerate()
            .map(|(cid, elements)| TransformedCustomer {
                customer_id: cid as u64 + 1,
                elements: elements
                    .into_iter()
                    .map(|element| {
                        let mut ids: Vec<LitemsetId> = element
                            .into_iter()
                            .map(|x| (x as usize % NUM_LITEMSETS) as LitemsetId)
                            .collect();
                        ids.sort_unstable();
                        ids.dedup();
                        ids
                    })
                    .filter(|ids| !ids.is_empty())
                    .collect(),
            })
            .collect();
        TransformedDatabase {
            customers,
            table,
            total_customers: total,
        }
    }

    fn build_candidates(raw: Vec<(u8, u8, u8)>, len: usize) -> CandidateArena {
        let mut candidates: Vec<Vec<LitemsetId>> = raw
            .into_iter()
            .map(|(a, b, c)| {
                [a, b, c][..len]
                    .iter()
                    .map(|&x| (x as usize % NUM_LITEMSETS) as LitemsetId)
                    .collect()
            })
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        CandidateArena::from_rows(len, candidates.iter().map(|c| c.as_slice()))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn thread_count_never_changes_counting_results(
            raw_db in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(0u8..12, 1..4),
                    0..6,
                ),
                0..9,
            ),
            raw_cands in proptest::collection::vec((0u8..12, 0u8..12, 0u8..12), 0..12),
            cand_len in 1usize..4,
        ) {
            let db = build_tdb(raw_db);
            let candidates = build_candidates(raw_cands, cand_len);
            let mut baseline: Option<Vec<u64>> = None;
            for strategy in [
                CountingStrategy::Direct,
                CountingStrategy::HashTree,
                CountingStrategy::Vertical,
                CountingStrategy::Bitmap,
                CountingStrategy::Auto,
            ] {
                let mut serial_tests = 0u64;
                let serial = count_supports(
                    &db,
                    &candidates,
                    strategy,
                    TreeParams::default(),
                    Parallelism::Serial,
                    &mut serial_tests,
                );
                // All three strategies agree on every support count.
                if let Some(base) = &baseline {
                    prop_assert_eq!(&serial, base, "{} vs direct", strategy);
                } else {
                    baseline = Some(serial.clone());
                }
                for threads in [1usize, 2, 3, 7] {
                    let mut tests = 0u64;
                    let parallel = count_supports(
                        &db,
                        &candidates,
                        strategy,
                        TreeParams::default(),
                        Parallelism::threads(threads),
                        &mut tests,
                    );
                    prop_assert_eq!(&parallel, &serial);
                    prop_assert_eq!(tests, serial_tests);
                }
            }
        }

        #[test]
        fn thread_count_never_changes_pair_counting(
            raw_db in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(0u8..12, 1..4),
                    0..6,
                ),
                0..9,
            ),
            min_count in 1u64..4,
        ) {
            let db = build_tdb(raw_db);
            let mut serial_tests = 0u64;
            let serial = large_two_sequences(&db, min_count, Parallelism::Serial, &mut serial_tests);
            for threads in [1usize, 2, 3, 7] {
                let mut tests = 0u64;
                let parallel =
                    large_two_sequences(&db, min_count, Parallelism::threads(threads), &mut tests);
                prop_assert_eq!(&parallel.1, &serial.1);
                prop_assert_eq!(parallel.0, serial.0);
                prop_assert_eq!(tests, serial_tests);
            }
        }

        /// Dynamic counterpart of the linter's determinism rules: the
        /// `map_chunks` → `sum_partials` reduction is a pure function of
        /// the input — invariant under the chunking, under staggered
        /// worker completion, and under any permutation of the partials
        /// (integer `+=` is exact and commutative).
        #[test]
        fn chunk_reduction_is_invariant_under_shuffled_completion(
            items in proptest::collection::vec(0u64..1000, 0..40),
            threads in 1usize..9,
            seed in 0u64..1_000_000_007,
        ) {
            let bins = 8usize;
            let hist = |chunk: &[u64]| {
                let mut h = vec![0u64; bins];
                for &x in chunk {
                    h[(x % bins as u64) as usize] += 1;
                }
                h
            };
            let totals = sum_partials(map_chunks(&items, 1, hist), bins);
            let mut partials = map_chunks(&items, threads, |chunk: &[u64]| {
                // Stagger workers by chunk contents so completion order
                // differs from spawn order; results must still arrive in
                // chunk order.
                let jitter = chunk.first().map_or(0, |&x| x % 4) * 50;
                std::thread::sleep(std::time::Duration::from_micros(jitter));
                hist(chunk)
            });
            prop_assert_eq!(sum_partials(partials.clone(), bins), totals.clone());
            // Seeded Fisher–Yates over the partials: the reduction must
            // ignore the order chunks are merged in.
            let mut state = seed | 1;
            for i in (1..partials.len()).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                partials.swap(i, (state as usize) % (i + 1));
            }
            prop_assert_eq!(sum_partials(partials, bins), totals);
        }
    }
}
