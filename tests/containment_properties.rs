//! Property tests for the containment relation itself — the foundation the
//! whole pipeline rests on (paper §2).

use proptest::prelude::*;
use seqpat::core::contain::{id_subsequence, sequence_contains};
use seqpat::{Itemset, Sequence};

fn arb_sequence() -> impl Strategy<Value = Sequence> {
    let element = proptest::collection::vec(0u32..8, 1..=3);
    proptest::collection::vec(element, 1..=5)
        .prop_map(|elements| Sequence::new(elements.into_iter().map(Itemset::new).collect()))
}

/// Brute-force containment by explicit embedding search, as an oracle for
/// the greedy implementation.
fn contains_oracle(hay: &[Itemset], needle: &[Itemset]) -> bool {
    fn search(hay: &[Itemset], needle: &[Itemset]) -> bool {
        if needle.is_empty() {
            return true;
        }
        for (i, h) in hay.iter().enumerate() {
            if needle[0].is_subset_of(h) && search(&hay[i + 1..], &needle[1..]) {
                return true;
            }
        }
        false
    }
    search(hay, needle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn greedy_matches_exhaustive_oracle(a in arb_sequence(), b in arb_sequence()) {
        prop_assert_eq!(
            sequence_contains(a.elements(), b.elements()),
            contains_oracle(a.elements(), b.elements())
        );
    }

    #[test]
    fn containment_is_reflexive(a in arb_sequence()) {
        prop_assert!(a.is_contained_in(&a));
    }

    #[test]
    fn containment_is_transitive(
        a in arb_sequence(),
        b in arb_sequence(),
        c in arb_sequence(),
    ) {
        if a.is_contained_in(&b) && b.is_contained_in(&c) {
            prop_assert!(a.is_contained_in(&c));
        }
    }

    #[test]
    fn containment_is_antisymmetric(a in arb_sequence(), b in arb_sequence()) {
        if a.is_contained_in(&b) && b.is_contained_in(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn dropping_an_element_preserves_containment(a in arb_sequence(), idx in 0usize..5) {
        // Every delete-one-element subsequence is contained in the original
        // — the anti-monotonicity backbone of candidate pruning.
        if a.len() >= 2 {
            let idx = idx % a.len();
            let mut elements = a.elements().to_vec();
            elements.remove(idx);
            let sub = Sequence::new(elements);
            prop_assert!(sub.is_contained_in(&a));
        }
    }

    #[test]
    fn shrinking_an_element_preserves_containment(a in arb_sequence(), idx in 0usize..5) {
        let idx = idx % a.len();
        let elements = a.elements().to_vec();
        if elements[idx].len() >= 2 {
            let mut smaller = elements.clone();
            let items = smaller[idx].items().to_vec();
            smaller[idx] = Itemset::new(items[..items.len() - 1].to_vec());
            let sub = Sequence::new(smaller);
            prop_assert!(sub.is_contained_in(&a));
        }
    }

    #[test]
    fn concatenation_contains_both_halves(a in arb_sequence(), b in arb_sequence()) {
        let mut joined = a.elements().to_vec();
        joined.extend(b.elements().iter().cloned());
        let joined = Sequence::new(joined);
        prop_assert!(a.is_contained_in(&joined));
        prop_assert!(b.is_contained_in(&joined));
    }

    #[test]
    fn id_subsequence_matches_slice_semantics(
        hay in proptest::collection::vec(0u32..6, 0..12),
        needle in proptest::collection::vec(0u32..6, 0..5),
    ) {
        // Oracle: exhaustive index-set search.
        fn oracle(hay: &[u32], needle: &[u32]) -> bool {
            if needle.is_empty() {
                return true;
            }
            for (i, &h) in hay.iter().enumerate() {
                if h == needle[0] && oracle(&hay[i + 1..], &needle[1..]) {
                    return true;
                }
            }
            false
        }
        prop_assert_eq!(id_subsequence(&hay, &needle), oracle(&hay, &needle));
    }
}
