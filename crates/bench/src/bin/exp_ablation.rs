//! **E7 — ablations** of the implementation choices DESIGN.md calls out:
//!
//! * counting strategy: the paper's candidate hash tree vs the direct
//!   bitmap-prefiltered scan;
//! * hash-tree shape: fanout × leaf-capacity grid;
//! * counting threads: 1 / 2 / 4 workers for both strategies.
//!
//! Results are identical across all cells by construction (the property
//! tests pin that); only the time and the number of exact containment
//! tests move.

use seqpat_bench::harness::measure_config;
use seqpat_bench::table::fmt_secs;
use seqpat_bench::{Args, Table};
use seqpat_core::counting::TreeParams;
use seqpat_core::{CountingStrategy, MinSupport, MinerConfig, Parallelism};
use seqpat_datagen::{generate, GenParams};

fn main() {
    let args = Args::parse();
    let minsup = if args.quick { 0.01 } else { 0.005 };
    let dataset = "C10-T2.5-S4-I1.25";
    let params = GenParams::paper_dataset(dataset)
        .expect("paper dataset")
        .customers(args.customers);
    let db = generate(&params, args.seed);

    println!(
        "E7: counting ablation on {dataset} (|D| = {}, minsup {:.2}%)\n",
        args.customers,
        minsup * 100.0
    );
    let mut table = Table::new(&[
        "strategy",
        "fanout",
        "leaf cap",
        "threads",
        "time s",
        "containment tests",
        "patterns",
    ]);
    let mut rows = Vec::new();

    let direct = measure_config(
        &db,
        dataset,
        minsup,
        MinerConfig::new(MinSupport::Fraction(minsup))
            .counting(CountingStrategy::Direct)
            .parallelism(Parallelism::Serial),
    );
    table.row(vec![
        "direct".into(),
        "-".into(),
        "-".into(),
        direct.threads.to_string(),
        fmt_secs(direct.seconds),
        direct.containment_tests.to_string(),
        direct.patterns.to_string(),
    ]);
    rows.push(format!(
        "direct,,,{},{:.6},{},{}",
        direct.threads, direct.seconds, direct.containment_tests, direct.patterns
    ));

    for fanout in [4usize, 16, 64] {
        for leaf_capacity in [8usize, 32, 128] {
            let mut config = MinerConfig::new(MinSupport::Fraction(minsup))
                .counting(CountingStrategy::HashTree)
                .parallelism(Parallelism::Serial);
            config.tree_params = TreeParams {
                fanout,
                leaf_capacity,
            };
            let m = measure_config(&db, dataset, minsup, config);
            assert_eq!(
                m.patterns, direct.patterns,
                "strategies must agree on the answer"
            );
            table.row(vec![
                "hash-tree".into(),
                fanout.to_string(),
                leaf_capacity.to_string(),
                m.threads.to_string(),
                fmt_secs(m.seconds),
                m.containment_tests.to_string(),
                m.patterns.to_string(),
            ]);
            rows.push(format!(
                "hash-tree,{},{},{},{:.6},{},{}",
                fanout, leaf_capacity, m.threads, m.seconds, m.containment_tests, m.patterns
            ));
        }
    }

    // Threads axis: both strategies, default tree shape. Answers and
    // containment-test counts stay bit-identical to the serial rows.
    for strategy in [CountingStrategy::Direct, CountingStrategy::HashTree] {
        for threads in [2usize, 4] {
            let config = MinerConfig::new(MinSupport::Fraction(minsup))
                .counting(strategy)
                .parallelism(Parallelism::threads(threads));
            let m = measure_config(&db, dataset, minsup, config);
            assert_eq!(
                m.patterns, direct.patterns,
                "thread count must not change the answer"
            );
            assert_eq!(m.threads, threads);
            let name = match strategy {
                CountingStrategy::Direct => "direct",
                CountingStrategy::HashTree => "hash-tree",
            };
            table.row(vec![
                name.into(),
                "-".into(),
                "-".into(),
                threads.to_string(),
                fmt_secs(m.seconds),
                m.containment_tests.to_string(),
                m.patterns.to_string(),
            ]);
            rows.push(format!(
                "{},,,{},{:.6},{},{}",
                name, threads, m.seconds, m.containment_tests, m.patterns
            ));
        }
    }
    table.print();
    let path = args
        .write_csv(
            "e7_ablation",
            "strategy,fanout,leaf_capacity,threads,seconds,containment_tests,patterns",
            &rows,
        )
        .expect("write CSV");
    println!("\nwrote {}", path.display());
}
