//! Positioned reads shared by the binary stores (`colstore`, and the
//! serve layer's `SEQPATS1` index reader in `seqpat-serve`).
//!
//! The workspace forbids `unsafe`, so there is no real `mmap(2)` backend:
//! [`ReadAt`] keeps the file open and serves byte ranges with positioned
//! reads — `pread` via `FileExt::read_exact_at` on Unix (no shared cursor,
//! so concurrent readers never race), and a mutex-guarded seek+read
//! fallback elsewhere. The kernel's page cache provides the same lazy,
//! page-granular behaviour mmap would, without the UB surface of a
//! remappable slice.

use std::fs::File;
use std::io;

/// Positioned reads over an open file. See the module docs for the
/// platform split.
#[derive(Debug)]
pub struct ReadAt {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
}

impl ReadAt {
    /// Wraps an open file. The file's cursor is never used on Unix; on
    /// other platforms it is owned by the internal mutex.
    pub fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            Self { file }
        }
        #[cfg(not(unix))]
        {
            Self {
                file: std::sync::Mutex::new(file),
            }
        }
    }

    /// Fills `buf` from `offset`, failing if the range runs past EOF.
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        #[cfg(unix)]
        {
            std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut file = match self.file.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)
        }
    }
}

/// Decodes a little-endian `u64` column from raw bytes.
pub fn u64s_from(buf: &[u8]) -> Vec<u64> {
    let mut out = Vec::with_capacity(buf.len() / 8);
    for c in buf.chunks_exact(8) {
        let mut b = [0u8; 8];
        b.copy_from_slice(c);
        out.push(u64::from_le_bytes(b));
    }
    out
}

/// Decodes a little-endian `u32` column from raw bytes.
pub fn u32s_from(buf: &[u8]) -> Vec<u32> {
    let mut out = Vec::with_capacity(buf.len() / 4);
    for c in buf.chunks_exact(4) {
        let mut b = [0u8; 4];
        b.copy_from_slice(c);
        out.push(u32::from_le_bytes(b));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn positioned_reads_do_not_disturb_each_other() {
        let mut path = std::env::temp_dir();
        path.push(format!("seqpat-readat-{}.bin", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(&[0, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        drop(f);
        let r = ReadAt::new(File::open(&path).unwrap());
        let mut a = [0u8; 2];
        let mut b = [0u8; 2];
        r.read_exact_at(&mut a, 6).unwrap();
        r.read_exact_at(&mut b, 0).unwrap();
        assert_eq!(a, [6, 7]);
        assert_eq!(b, [0, 1]);
        assert!(r.read_exact_at(&mut a, 7).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn column_decoders_are_little_endian() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&(u64::MAX - 1).to_le_bytes());
        assert_eq!(u64s_from(&bytes), vec![1, u64::MAX - 1]);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(u32s_from(&bytes), vec![7, u32::MAX]);
    }
}
