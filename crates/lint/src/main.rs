//! CLI entry point: `cargo run -p seqpat-lint -- [--root DIR] [--json]`.

use std::path::PathBuf;
use std::process::ExitCode;

use seqpat_lint::{engine, rules};

const USAGE: &str = "usage: seqpat-lint [--root DIR] [--json] [--list-rules]
  --root DIR    workspace root to scan (default: .)
  --json        emit the machine-readable report on stdout (human report
                goes to stderr)
  --list-rules  print the rule names and exit";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--list-rules" => {
                for (name, desc) in rules::RULES {
                    println!("{name}\n    {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match engine::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("seqpat-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let human = |line: String| {
        if json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    for v in &report.violations {
        human(format!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message));
    }
    human(format!(
        "seqpat-lint: {} violation(s), {} suppressed, {} files scanned",
        report.violations.len(),
        report.suppressed,
        report.files_scanned
    ));
    if json {
        print!("{}", engine::to_json(&report));
    }

    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
