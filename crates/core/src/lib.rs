//! # seqpat-core — Mining Sequential Patterns (Agrawal & Srikant, ICDE 1995)
//!
//! A from-scratch, faithful implementation of the paper that created the
//! sequential-pattern-mining problem. Given a database of customer
//! transactions, the library finds all **maximal sequences of itemsets**
//! whose support (fraction of customers whose transaction history contains
//! the sequence) meets a user threshold.
//!
//! ## The five phases (paper §3)
//!
//! 1. **Sort** ([`phases::sort`]) — raw `(customer, time, items)` rows are
//!    grouped into time-ordered customer sequences.
//! 2. **Litemset** ([`phases::litemset`]) — all *large itemsets* are found
//!    with customer-level support (substrate: the Apriori miner in
//!    `seqpat-itemset`) and mapped to contiguous integer ids.
//! 3. **Transformation** ([`phases::transform`]) — each transaction is
//!    replaced by the set of litemset ids it contains, so containment tests
//!    in the sequence phase become integer-set operations.
//! 4. **Sequence** ([`algorithms`]) — the large sequences are found by one
//!    of the paper's three algorithms: [`algorithms::apriori_all()`],
//!    [`algorithms::apriori_some()`] or [`algorithms::dynamic_some()`].
//! 5. **Maximal** ([`phases::maximal`]) — sequences contained in another
//!    large sequence are pruned (AprioriSome/DynamicSome fold most of this
//!    into their backward passes).
//!
//! ## Quick start
//!
//! ```
//! use seqpat_core::{Database, Miner, MinerConfig, Algorithm, MinSupport};
//!
//! // The running example of the ICDE'95 paper (§2, Figures 1-3).
//! let db = Database::from_rows(vec![
//!     (1, 1, vec![30]), (1, 2, vec![90]),
//!     (2, 1, vec![10, 20]), (2, 2, vec![30]), (2, 3, vec![40, 60, 70]),
//!     (3, 1, vec![30, 50, 70]),
//!     (4, 1, vec![30]), (4, 2, vec![40, 70]), (4, 3, vec![90]),
//!     (5, 1, vec![90]),
//! ]);
//! let config = MinerConfig::new(MinSupport::Fraction(0.25)).algorithm(Algorithm::AprioriAll);
//! let result = Miner::new(config).mine(&db);
//! let mut found: Vec<String> = result.patterns.iter().map(|p| p.to_string()).collect();
//! found.sort();
//! // The paper's answer: ⟨(30)(90)⟩ and ⟨(30)(40 70)⟩.
//! assert_eq!(found, vec!["<(30)(40 70)>", "<(30)(90)>"]);
//! ```
//!
//! All three algorithms return identical answers; they differ only in how
//! many candidates they count (see the experiment harness in `seqpat-bench`).

pub mod algorithms;
pub mod arena;
pub mod bitmap;
pub mod contain;
pub mod counting;
pub mod dataset;
pub mod fxhash;
pub mod hash_tree;
pub mod miner;
pub mod naive;
pub mod phases;
pub mod stats;
pub mod support;
pub mod types;
pub mod vertical;

pub use algorithms::Algorithm;
pub use arena::CandidateArena;
pub use bitmap::{BitmapIndex, BitmapState};
pub use counting::{auto_decide, AutoDecision, CountingContext, CountingStrategy};
pub use dataset::{shard_ranges, Dataset, ShardScratch};
pub use miner::{Miner, MinerConfig, MiningResult, Pattern};
pub use phases::maximal::LargeIdSequence;
pub use phases::transform::TransformContext;
pub use seqpat_itemset::cast;
pub use seqpat_itemset::Parallelism;
pub use stats::{MiningStats, SequencePassStats};
pub use support::MinSupport;
pub use types::database::{CustomerSequence, Database, Transaction};
pub use types::itemset::{Item, Itemset};
pub use types::sequence::Sequence;
pub use types::transformed::{LitemsetId, LitemsetTable, TransformedCustomer, TransformedDatabase};
pub use vertical::VerticalParams;
