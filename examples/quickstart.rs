//! Quickstart: mine the running example of the ICDE'95 paper.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the five-customer database of the paper's §2, mines it at 25%
//! minimum support with each of the three algorithms, and prints the
//! maximal sequential patterns — which the paper reports as
//! `⟨(30)(90)⟩` and `⟨(30)(40 70)⟩`.

use seqpat::{Algorithm, Database, MinSupport, Miner, MinerConfig};

fn main() {
    // (customer, transaction-time, items) — rows may be in any order; the
    // sort phase orders them.
    let db = Database::from_rows(vec![
        (1, 1, vec![30]),
        (1, 2, vec![90]),
        (2, 1, vec![10, 20]),
        (2, 2, vec![30]),
        (2, 3, vec![40, 60, 70]),
        (3, 1, vec![30, 50, 70]),
        (4, 1, vec![30]),
        (4, 2, vec![40, 70]),
        (4, 3, vec![90]),
        (5, 1, vec![90]),
    ]);

    println!(
        "database: {} customers, {} transactions\n",
        db.num_customers(),
        db.num_transactions()
    );

    for algorithm in [
        Algorithm::AprioriAll,
        Algorithm::AprioriSome,
        Algorithm::DynamicSome { step: 2 },
    ] {
        let config = MinerConfig::new(MinSupport::Fraction(0.25)).algorithm(algorithm);
        let result = Miner::new(config).mine(&db);
        println!(
            "{algorithm} (support >= {} customers):",
            result.min_support_count
        );
        for pattern in &result.patterns {
            println!(
                "  {pattern}   support {}/{} ({:.0}%)",
                pattern.support,
                result.num_customers,
                100.0 * result.support_fraction(pattern)
            );
        }
        println!(
            "  [counted {} candidates, {} containment tests]\n",
            result.stats.candidates_counted, result.stats.containment_tests
        );
    }
}
