//! Data model: items, itemsets, sequences, databases and their transformed
//! (litemset-id) counterparts.

pub mod database;
pub mod itemset;
pub mod sequence;
pub mod transformed;
