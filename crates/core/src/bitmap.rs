//! Bitmap (SPAM-style) support counting — [`CountingStrategy::Bitmap`].
//!
//! The vertical id-list strategy ([`crate::vertical`]) already touches only
//! the customers where a candidate's parts occur, but its merge-joins are
//! branch-heavy pointer walks over `(customer, position)` pairs. The
//! SPAM-family bitmap layout makes the same temporal join *word-parallel*:
//! every litemset id gets one packed bitmap over all transaction slots, and
//! extending a sequence by one litemset is a shift-AND over `u64` words.
//!
//! ## Word layout
//!
//! The whole index is **two allocations**:
//!
//! * `word_offsets` — a per-customer CSR table: customer `c`'s transactions
//!   occupy bit positions `0..len(c)` within the word span
//!   `word_offsets[c]..word_offsets[c+1]` (spans are `ceil(len(c)/64)`
//!   words; transaction `t` is bit `t % 64` of word `t / 64` of the span).
//! * `bits` — a flat id-major `Vec<u64>` arena of `num_ids × total_words`
//!   words: litemset `x`'s bitmap is the contiguous slice
//!   `bits[x·W .. (x+1)·W]`, bit set iff the transaction contains `x`.
//!
//! Both are built once after the transformation phase, are cache-linear by
//! construction, and are reused across every pass of the sequence phase.
//!
//! ## The S-step kernel
//!
//! For a sequence `s`, define `frontier(s)`: bit `(c, t)` set iff customer
//! `c` has an embedding of `s` whose **earliest-match** end is transaction
//! `t` — by the exchange argument behind [`crate::contain`], at most one
//! bit per customer, and it is exactly the `Occurrence.pos` the vertical
//! strategy computes. Extension is SPAM's S-step:
//!
//! ```text
//! frontier(s · ⟨x⟩) = sstep(frontier(s)) & bits(x)
//! ```
//!
//! where [`sstep`] transforms each customer span so that every bit
//! *strictly after* the first set bit becomes 1 (first-occurrence
//! propagation — "everything later than the earliest end is a legal start
//! for the next element"). Within one word that is two ALU ops and a
//! complement; across a customer longer than 64 transactions a carry flag
//! saturates all later words of the span to `u64::MAX` (harmless garbage
//! past `len(c)`: the AND with `bits(x)` masks it, since litemset bitmaps
//! only ever set valid transaction positions).
//!
//! A customer supports the candidate iff its final span is non-zero, so
//! counting is **popcount-free**: one `!= 0` test per span, with the AND
//! against the last litemset's bitmap fused into the test (early exit on
//! the first non-zero word).
//!
//! ## Parallelism and determinism
//!
//! [`BitmapState::count`] shards **customers** into contiguous chunks via
//! [`map_chunks`]; each worker folds every prefix run over its own word
//! range only. Because the chunk word ranges partition the database, the
//! per-candidate supports and the [`BitmapState::sstep_ops`] counter (words
//! processed by the smear kernel) are bit-identical for any thread count —
//! the workspace-wide determinism guarantee the other strategies pin.
//!
//! [`CountingStrategy::Bitmap`]: crate::counting::CountingStrategy

use crate::arena::CandidateArena;
use crate::cast::{id32, idx, w64};
use crate::stats::Stopwatch;
use crate::types::transformed::{LitemsetId, TransformedDatabase};
use crate::vertical::Occurrence;
use seqpat_itemset::parallel::{map_chunks, sum_partials};
use std::time::Duration;

/// Single-word S-step: returns the word with every bit **strictly above**
/// the lowest set bit of `w` set, and all others clear (`0` maps to `0`).
///
/// `l = w & w.wrapping_neg()` isolates the lowest set bit; `l - 1` is the
/// mask of bits strictly below it, so `!(l | (l - 1))` is the mask of bits
/// strictly above it. For `w == 0`, `l == 0` and `l - 1` wraps to all-ones,
/// giving `0` — no match yet means nothing may start.
#[inline]
pub fn sstep(w: u64) -> u64 {
    let l = w & w.wrapping_neg();
    !(l | l.wrapping_sub(1))
}

/// Applies the S-step to every customer span of `frontier`, with the
/// multi-word carry for customers longer than 64 transactions: once a span
/// word held a set bit, every later word of the span saturates to all-ones
/// ("any position in a later word is strictly after the earliest end").
///
/// `offsets` is the window of the CSR table covering exactly the customers
/// whose words `frontier` holds (`offsets[0]` maps to `frontier[0]`).
/// Adds one count per word processed to `sstep_ops`.
fn smear_spans(offsets: &[u32], frontier: &mut [u64], sstep_ops: &mut u64) {
    debug_assert!(
        !offsets.is_empty()
            && offsets.windows(2).all(|s| s[0] <= s[1])
            && offsets
                .last()
                .is_some_and(|&e| idx(e - offsets[0]) <= frontier.len()),
        "CSR word offsets are monotone and the frontier covers their span"
    );
    let base = offsets[0];
    for span in offsets.windows(2) {
        let (a, b) = (idx(span[0] - base), idx(span[1] - base));
        let mut carry = false;
        for w in &mut frontier[a..b] {
            if carry {
                *w = u64::MAX;
            } else if *w != 0 {
                *w = sstep(*w);
                carry = true;
            }
        }
        *sstep_ops += w64(b - a);
    }
}

/// `frontier &= other`, word by word.
fn and_words(frontier: &mut [u64], other: &[u64]) {
    for (f, &o) in frontier.iter_mut().zip(other) {
        *f &= o;
    }
}

/// Packed per-litemset bitmaps over a flat arena with a per-customer CSR
/// word-offset table. See the module docs for the exact layout.
#[derive(Debug)]
pub struct BitmapIndex {
    /// `customers + 1` entries; customer `c` owns words
    /// `word_offsets[c]..word_offsets[c+1]` of each id's bitmap.
    word_offsets: Vec<u32>,
    /// Id-major arena: `num_ids × total_words` words.
    bits: Vec<u64>,
    total_words: usize,
    num_ids: usize,
}

impl BitmapIndex {
    /// Builds the index in one scan of the transformed database.
    pub fn build(tdb: &TransformedDatabase) -> Self {
        let num_ids = tdb.table.len();
        let mut word_offsets = Vec::with_capacity(tdb.customers.len() + 1);
        word_offsets.push(0u32);
        let mut total = 0u32;
        for customer in &tdb.customers {
            total += id32(customer.elements.len().div_ceil(64));
            word_offsets.push(total);
        }
        let total_words = idx(total);
        let mut bits = vec![0u64; num_ids * total_words];
        debug_assert_eq!(
            word_offsets.len(),
            tdb.customers.len() + 1,
            "one CSR word offset per customer plus the terminator"
        );
        for (c, customer) in tdb.customers.iter().enumerate() {
            let base = idx(word_offsets[c]);
            for (t, element) in customer.elements.iter().enumerate() {
                let word = base + t / 64;
                let bit = 1u64 << (t % 64);
                for &id in element {
                    bits[idx(id) * total_words + word] |= bit;
                }
            }
        }
        Self {
            word_offsets,
            bits,
            total_words,
            num_ids,
        }
    }

    /// Number of customers covered.
    pub fn num_customers(&self) -> usize {
        self.word_offsets.len() - 1
    }

    /// Number of litemset ids covered.
    pub fn num_ids(&self) -> usize {
        self.num_ids
    }

    /// Total `u64` words in the bitmap arena (`num_ids × words-per-id`).
    pub fn words(&self) -> u64 {
        w64(self.bits.len())
    }

    /// Heap bytes held by the index (arena + offset table).
    pub fn bytes(&self) -> u64 {
        w64(self.bits.len() * std::mem::size_of::<u64>()
            + self.word_offsets.len() * std::mem::size_of::<u32>())
    }

    /// Words `w0..w1` of litemset `id`'s bitmap.
    fn id_words(&self, id: LitemsetId, w0: usize, w1: usize) -> &[u64] {
        debug_assert!(
            idx(id) < self.num_ids && w0 <= w1 && w1 <= self.total_words,
            "id in alphabet and word range within one bitmap"
        );
        let base = idx(id) * self.total_words;
        &self.bits[base + w0..base + w1]
    }
}

/// Per-mining-run state of the bitmap strategy: the index plus the
/// counters that feed [`crate::stats::MiningStats`]. Unlike the vertical
/// strategy there is nothing to cache between passes — the frontier fold
/// is cheap enough to redo per prefix run, and the index itself never
/// changes.
#[derive(Debug)]
pub struct BitmapState {
    index: BitmapIndex,
    /// Customer indices `0..num_customers`, precomputed once so every
    /// [`BitmapState::count`] call can shard without rebuilding the list.
    customers: Vec<u32>,
    /// Whole-database frontier scratch reused across
    /// [`BitmapState::occurrences_of`] calls.
    frontier: Vec<u64>,
    /// Wall time spent building the index.
    pub index_build_time: Duration,
    /// Words processed by the smear kernel so far (the bitmap analogue of
    /// an exact containment test / merge-join; thread-invariant).
    pub sstep_ops: u64,
}

impl BitmapState {
    /// Builds the bitmap index for `tdb`.
    pub fn build(tdb: &TransformedDatabase) -> Self {
        let watch = Stopwatch::start();
        let index = BitmapIndex::build(tdb);
        let index_build_time = watch.elapsed();
        let customers: Vec<u32> = (0..id32(index.num_customers())).collect();
        Self {
            index,
            customers,
            frontier: Vec::new(),
            index_build_time,
            sstep_ops: 0,
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &BitmapIndex {
        &self.index
    }

    /// Counts the support of every candidate in `candidates` (sorted,
    /// equal-length rows) with S-step folds, sharding customers over
    /// `threads` workers. Supports and `sstep_ops` are bit-identical
    /// across thread counts.
    pub fn count(&mut self, candidates: &CandidateArena, threads: usize) -> Vec<u64> {
        let n = candidates.num_candidates();
        if n == 0 {
            return Vec::new();
        }
        let len = candidates.candidate_len();

        debug_assert!(
            candidates
                .iter()
                .flatten()
                .all(|&id| idx(id) < self.index.num_ids),
            "every candidate id is within the index alphabet"
        );

        // Maximal blocks of candidates sharing the length-(len-1) prefix
        // (contiguous because arenas are sorted): the prefix frontier is
        // folded once per run, then each candidate in the run costs one
        // fused AND + non-zero test per customer span.
        let runs = candidates.prefix_runs();

        let index = &self.index;
        let partials = map_chunks(&self.customers, threads, |chunk| {
            if chunk.is_empty() {
                return (vec![0u64; n], 0);
            }
            // Chunks are contiguous customer ranges, so the chunk owns the
            // contiguous word range [w0, w1) of every id's bitmap.
            let first = idx(chunk[0]);
            let last = first + chunk.len() - 1;
            let offsets = &index.word_offsets[first..=last + 1];
            let w0 = idx(offsets[0]);
            let w1 = idx(offsets[offsets.len() - 1]);
            debug_assert!(
                w0 <= w1 && offsets.len() == chunk.len() + 1,
                "a chunk owns a contiguous word range, one offset per customer plus terminator"
            );
            let mut supports = vec![0u64; n];
            let mut ops = 0u64;
            let mut frontier = vec![0u64; w1 - w0];
            for &(start, end) in &runs {
                let row = candidates.get(start);
                if len >= 2 {
                    frontier.copy_from_slice(index.id_words(row[0], w0, w1));
                    for &id in &row[1..len - 1] {
                        smear_spans(offsets, &mut frontier, &mut ops);
                        and_words(&mut frontier, index.id_words(id, w0, w1));
                    }
                    smear_spans(offsets, &mut frontier, &mut ops);
                }
                for (i, support) in supports[start..end].iter_mut().enumerate() {
                    let last_id = candidates.get(start + i)[len - 1];
                    let last_bits = index.id_words(last_id, w0, w1);
                    for span in offsets.windows(2) {
                        let (a, b) = (idx(span[0]) - w0, idx(span[1]) - w0);
                        // Fused AND + non-zero: popcount-free support.
                        let hit = if len == 1 {
                            last_bits[a..b].iter().any(|&w| w != 0)
                        } else {
                            frontier[a..b]
                                .iter()
                                .zip(&last_bits[a..b])
                                .any(|(&f, &l)| f & l != 0)
                        };
                        *support += u64::from(hit);
                    }
                }
            }
            (supports, ops)
        });

        let mut sstep_ops = 0u64;
        let supports = sum_partials(
            partials.into_iter().map(|(partial, ops)| {
                sstep_ops += ops;
                partial
            }),
            n,
        );
        self.sstep_ops += sstep_ops;
        supports
    }

    /// The earliest-match end of `ids` per supporting customer, written
    /// into `out` (cleared first) as `(customer, pos)` occurrences —
    /// identical to [`crate::vertical::VerticalState::occurrences_of`].
    /// Used by DynamicSome's on-the-fly pass: fold the whole-database
    /// frontier (into scratch retained on the state), then take the first
    /// set bit of each non-zero span.
    pub fn occurrences_of(&mut self, ids: &[LitemsetId], out: &mut Vec<Occurrence>) {
        out.clear();
        if ids.is_empty() {
            return;
        }
        debug_assert!(
            ids.iter().all(|&id| idx(id) < self.index.num_ids),
            "every id is within the index alphabet"
        );
        let tw = self.index.total_words;
        let offsets = &self.index.word_offsets;
        let frontier = &mut self.frontier;
        frontier.clear();
        frontier.extend_from_slice(self.index.id_words(ids[0], 0, tw));
        for &id in &ids[1..] {
            smear_spans(offsets, frontier, &mut self.sstep_ops);
            and_words(frontier, self.index.id_words(id, 0, tw));
        }
        for (c, span) in offsets.windows(2).enumerate() {
            let (a, b) = (idx(span[0]), idx(span[1]));
            for (wi, &w) in frontier[a..b].iter().enumerate() {
                if w != 0 {
                    out.push(Occurrence {
                        customer: id32(c),
                        pos: id32(wi * 64 + idx(w.trailing_zeros())),
                    });
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contain::customer_contains_from;
    use crate::types::itemset::Itemset;
    use crate::types::transformed::{LitemsetTable, TransformedCustomer};

    fn tdb(customers: Vec<Vec<Vec<LitemsetId>>>, num_ids: u32) -> TransformedDatabase {
        let table = LitemsetTable::new(
            (0..num_ids)
                .map(|i| (Itemset::new(vec![i + 1]), 1))
                .collect::<Vec<_>>(),
        );
        let total = customers.len();
        TransformedDatabase {
            customers: customers
                .into_iter()
                .enumerate()
                .map(|(i, elements)| TransformedCustomer {
                    customer_id: i as u64 + 1,
                    elements,
                })
                .collect(),
            table,
            total_customers: total,
        }
    }

    fn occ(customer: u32, pos: u32) -> Occurrence {
        Occurrence { customer, pos }
    }

    fn occs(state: &mut BitmapState, ids: &[LitemsetId]) -> Vec<Occurrence> {
        let mut out = vec![occ(9, 9)]; // stale content must be cleared
        state.occurrences_of(ids, &mut out);
        out
    }

    #[test]
    fn sstep_sets_exactly_the_bits_above_the_lowest_set_bit() {
        assert_eq!(sstep(0), 0);
        assert_eq!(sstep(0b1), !0b1u64);
        assert_eq!(sstep(0b1000), !0b1111u64);
        // Higher set bits are irrelevant — only the lowest matters.
        assert_eq!(sstep(0b1010_1000), !0b1111u64);
        // A match at the top bit leaves nothing strictly after it.
        assert_eq!(sstep(1u64 << 63), 0);
        assert_eq!(sstep(u64::MAX), !0b1u64);
    }

    #[test]
    fn index_layout_spans_and_bits() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1, 2], vec![0]],
                vec![],
                vec![vec![2], vec![0, 2]],
            ],
            3,
        );
        let index = BitmapIndex::build(&db);
        // Customer spans: 1 word, 0 words (empty), 1 word.
        assert_eq!(index.word_offsets, vec![0, 1, 1, 2]);
        assert_eq!(index.total_words, 2);
        assert_eq!(index.words(), 6); // 3 ids × 2 words
        assert!(index.bytes() > 0);
        // id 0: customer 0 transactions {0, 2}, customer 2 transaction {1}.
        assert_eq!(index.id_words(0, 0, 2), &[0b101, 0b10]);
        // id 1: customer 0 transaction {1} only.
        assert_eq!(index.id_words(1, 0, 2), &[0b010, 0b00]);
        // id 2: customer 0 transaction {1}, customer 2 transactions {0, 1}.
        assert_eq!(index.id_words(2, 0, 2), &[0b010, 0b11]);
    }

    #[test]
    fn multi_word_customers_get_multi_word_spans() {
        // 70 transactions → 2 words for customer 0; 1 word for customer 1.
        let mut long = vec![vec![9u32]; 70];
        long[0] = vec![0];
        long[69] = vec![1];
        let db = tdb(vec![long, vec![vec![0], vec![1]]], 10);
        let index = BitmapIndex::build(&db);
        assert_eq!(index.word_offsets, vec![0, 2, 3]);
        assert_eq!(index.id_words(0, 0, 3), &[1, 0, 0b01]);
        assert_eq!(index.id_words(1, 0, 3), &[0, 1 << 5, 0b10]); // 69 = 64 + 5
    }

    /// Brute-force oracle: count + earliest ends via the containment kernel.
    fn oracle(db: &TransformedDatabase, cand: &[LitemsetId]) -> Vec<Occurrence> {
        db.customers
            .iter()
            .enumerate()
            .filter_map(|(c, customer)| {
                customer_contains_from(customer, cand, 0).map(|end| occ(c as u32, end as u32))
            })
            .collect()
    }

    #[test]
    fn counting_matches_containment_oracle() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![0, 1], vec![2]],
                vec![vec![1, 2], vec![0], vec![0]],
                vec![vec![2], vec![2], vec![1]],
                vec![vec![0, 1, 2]],
                vec![],
            ],
            3,
        );
        // All 27 ordered triples over {0,1,2}; sorted by construction.
        let mut triples = CandidateArena::new(3);
        for a in 0..3u32 {
            for b in 0..3u32 {
                for c in 0..3u32 {
                    triples.push(&[a, b, c]);
                }
            }
        }
        let mut state = BitmapState::build(&db);
        for threads in [1usize, 2, 4] {
            let supports = state.count(&triples, threads);
            for (i, cand) in triples.iter().enumerate() {
                let expected = oracle(&db, cand);
                assert_eq!(
                    supports[i],
                    expected.len() as u64,
                    "threads {threads}, candidate {cand:?}"
                );
            }
        }
    }

    #[test]
    fn multi_word_carry_crosses_the_64_transaction_boundary() {
        // Customer 0: id 0 at transaction 3, id 1 only at transaction 69 —
        // the S-step carry must propagate the match across the word seam.
        // Customer 1: id 1 at transaction 69 but id 0 only at 69 too (not
        // strictly earlier) — must NOT support ⟨0 1⟩.
        let mut c0 = vec![vec![9u32]; 70];
        c0[3] = vec![0];
        c0[69] = vec![1];
        let mut c1 = vec![vec![9u32]; 70];
        c1[69] = vec![0, 1];
        let db = tdb(vec![c0, c1], 10);
        let mut state = BitmapState::build(&db);
        let pairs = CandidateArena::from_rows(2, [&[0u32, 1][..], &[1, 0]]);
        for threads in [1usize, 2, 4] {
            assert_eq!(
                state.count(&pairs, threads),
                vec![1, 0],
                "{threads} threads"
            );
        }
        assert_eq!(occs(&mut state, &[0, 1]), vec![occ(0, 69)]);
    }

    #[test]
    fn length_one_candidates_count_distinct_customers() {
        let db = tdb(
            vec![vec![vec![0], vec![0]], vec![vec![0]], vec![vec![1]]],
            2,
        );
        let mut state = BitmapState::build(&db);
        let singles = CandidateArena::from_rows(1, [&[0u32][..], &[1]]);
        assert_eq!(state.count(&singles, 1), vec![2, 1]);
        assert_eq!(state.sstep_ops, 0); // length 1 needs no smear
    }

    #[test]
    fn occurrences_of_matches_earliest_match_ends() {
        let db = tdb(
            vec![
                vec![vec![0], vec![0, 1], vec![1]],
                vec![vec![1], vec![0]],
                vec![vec![0], vec![1]],
            ],
            2,
        );
        let mut state = BitmapState::build(&db);
        assert_eq!(occs(&mut state, &[0, 1]), vec![occ(0, 1), occ(2, 1)]);
        assert_eq!(occs(&mut state, &[1, 0]), vec![occ(1, 1)]);
        assert_eq!(
            occs(&mut state, &[0]),
            vec![occ(0, 0), occ(1, 1), occ(2, 0)]
        );
        assert!(occs(&mut state, &[]).is_empty());
    }

    #[test]
    fn supports_and_sstep_ops_are_thread_invariant() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![0], vec![1]],
                vec![vec![1], vec![0], vec![1]],
                vec![vec![0], vec![0], vec![1]],
                vec![vec![1], vec![1]],
            ],
            2,
        );
        let mut pairs = CandidateArena::new(2);
        for a in 0..2u32 {
            for b in 0..2u32 {
                pairs.push(&[a, b]);
            }
        }
        let run = |threads: usize| {
            let mut state = BitmapState::build(&db);
            let supports = state.count(&pairs, threads);
            (supports, state.sstep_ops)
        };
        let serial = run(1);
        assert!(serial.1 > 0);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "{threads} threads");
        }
    }
}
