//! Fixed-width table printing for paper-style output.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity does not match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numerics, left-align text.
                if cell.parse::<f64>().is_ok() {
                    line.push_str(&format!("{cell:>w$}", w = w));
                } else {
                    line.push_str(&format!("{cell:<w$}", w = w));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a duration in seconds with adaptive precision.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 0.01 {
        format!("{:.4}", secs)
    } else if secs < 1.0 {
        format!("{:.3}", secs)
    } else {
        format!("{:.2}", secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "12345".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        // Every line same width.
        assert_eq!(lines[0].len(), lines[1].len());
        assert!(lines[2].starts_with("short"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_secs_precision() {
        assert_eq!(fmt_secs(0.00123), "0.0012");
        assert_eq!(fmt_secs(0.123), "0.123");
        assert_eq!(fmt_secs(12.3456), "12.35");
    }
}
