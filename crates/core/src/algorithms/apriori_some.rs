//! **AprioriSome** (paper §4.2): count only some lengths forward; recover
//! the skipped lengths backward.
//!
//! Forward phase: candidates are generated for *every* length (they are
//! needed to generate longer candidates), but supports are counted only for
//! the lengths the [`next`] heuristic selects. When length `k-1` was
//! counted, `C_k` is generated from `L_{k-1}`; otherwise from `C_{k-1}` —
//! candidates-of-candidates, the price of skipping.
//!
//! Backward phase ([`backward`]): see that module. The payoff: sequences
//! contained in a longer large sequence are non-maximal and never get
//! counted at all, so AprioriSome counts far fewer candidates than
//! AprioriAll when long patterns exist (the paper's headline result).

use super::apriori_all::{large_one_sequences, SequencePhaseOptions};
use super::backward::{backward, ForwardOutput};
use super::candidate;
use super::next::next;
use crate::arena::CandidateArena;
use crate::dataset::Dataset;
use crate::phases::maximal::LargeIdSequence;
use crate::stats::Stopwatch;
use crate::stats::{MiningStats, SequencePassStats};

/// Runs AprioriSome. Returns a superset of the maximal large sequences
/// (every returned sequence is large; non-maximal leftovers are removed by
/// the maximal phase).
pub fn apriori_some(
    ds: &dyn Dataset,
    min_count: u64,
    options: &SequencePhaseOptions,
    stats: &mut MiningStats,
) -> Vec<LargeIdSequence> {
    let mut ctx = options.context(ds);
    let pass_start = Stopwatch::start();
    let l1 = large_one_sequences(ds);
    stats.record_pass(SequencePassStats {
        k: 1,
        generated: l1.len() as u64,
        counted: 0,
        large: l1.len() as u64,
        backward: false,
        pruned_by_containment: 0,
        pass_time: pass_start.elapsed(),
    });

    let mut forward = ForwardOutput::default();
    // The generation source for the next length: ids of L_{k-1} when
    // counted, else C_{k-1}.
    let mut source = CandidateArena::from_rows(1, l1.iter().map(|s| s.ids.as_slice()));
    forward.counted.insert(1, l1);

    // next() schedule state. Pass 1 has C1 = L1 (hit ratio trivially 1.0),
    // which would let next() leap straight to length 6 and generate five
    // levels of candidates-of-candidates — clearly not the published
    // behaviour: the paper's own trace counts C2 first. The schedule
    // therefore starts at 2 and engages next() from the first real count.
    let mut count_at = 2usize;

    let mut k = 2usize;
    while !source.is_empty() {
        if options.max_length.is_some_and(|cap| k > cap) {
            break;
        }
        let pass_start = Stopwatch::start();
        // Pass 2 fast path (C2 = the full |L1|² pair grid; count_at is
        // always 2 here, see the schedule note above).
        if k == 2 {
            debug_assert_eq!(count_at, 2);
            let (generated, l2) = ctx.large_two(ds, min_count);
            stats.record_pass(SequencePassStats {
                k,
                generated,
                counted: generated,
                large: l2.len() as u64,
                backward: false,
                pruned_by_containment: 0,
                pass_time: pass_start.elapsed(),
            });
            let hit = l2.len() as f64 / generated.max(1) as f64;
            count_at = next(k, hit);
            source = CandidateArena::from_rows(k, l2.iter().map(|s| s.ids.as_slice()));
            forward.counted.insert(k, l2);
            k += 1;
            continue;
        }
        let candidates = candidate::generate(&source);
        if candidates.is_empty() {
            break;
        }
        if k == count_at {
            let supports = ctx.count(ds, &candidates);
            let lk: Vec<LargeIdSequence> = candidates
                .iter()
                .zip(&supports)
                .filter(|&(_, &s)| s >= min_count)
                .map(|(ids, &support)| LargeIdSequence {
                    ids: ids.to_vec(),
                    support,
                })
                .collect();
            stats.record_pass(SequencePassStats {
                k,
                generated: candidates.num_candidates() as u64,
                counted: candidates.num_candidates() as u64,
                large: lk.len() as u64,
                backward: false,
                pruned_by_containment: 0,
                pass_time: pass_start.elapsed(),
            });
            let hit = lk.len() as f64 / candidates.num_candidates() as f64;
            count_at = next(k, hit);
            debug_assert!(count_at > k);
            source = CandidateArena::from_rows(k, lk.iter().map(|s| s.ids.as_slice()));
            let empty = lk.is_empty();
            forward.counted.insert(k, lk);
            if empty {
                break;
            }
        } else {
            stats.record_pass(SequencePassStats {
                k,
                generated: candidates.num_candidates() as u64,
                counted: 0,
                large: 0,
                backward: false,
                pruned_by_containment: 0,
                pass_time: pass_start.elapsed(),
            });
            source = candidates.clone();
            forward.skipped.insert(k, candidates);
        }
        k += 1;
    }

    let kept = backward(ds, min_count, &mut ctx, stats, forward);
    ctx.flush_into(stats);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::apriori_all::{apriori_all, tests::paper_tdb};
    use crate::phases::maximal::maximal_phase;
    use crate::types::transformed::TransformedDatabase;

    fn maximal_strings(tdb: &TransformedDatabase, seqs: Vec<LargeIdSequence>) -> Vec<String> {
        let mut v: Vec<String> = maximal_phase(seqs, &tdb.table)
            .into_iter()
            .map(|s| format!("{}:{}", tdb.to_sequence(&s.ids), s.support))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn paper_example_matches_apriori_all_maximal_answer() {
        let tdb = paper_tdb();
        let mut s1 = MiningStats::default();
        let all = apriori_all(&tdb, 2, &SequencePhaseOptions::default(), &mut s1);
        let mut s2 = MiningStats::default();
        let some = apriori_some(&tdb, 2, &SequencePhaseOptions::default(), &mut s2);
        assert_eq!(maximal_strings(&tdb, all), maximal_strings(&tdb, some));
        assert_eq!(
            maximal_strings(
                &tdb,
                apriori_some(&tdb, 2, &SequencePhaseOptions::default(), &mut s2)
            ),
            vec!["<(30)(40 70)>:2", "<(30)(90)>:2"]
        );
    }

    #[test]
    fn every_returned_sequence_is_large() {
        let tdb = paper_tdb();
        let mut stats = MiningStats::default();
        let some = apriori_some(&tdb, 2, &SequencePhaseOptions::default(), &mut stats);
        for s in &some {
            assert!(s.support >= 2, "{:?} has support {}", s.ids, s.support);
        }
    }

    #[test]
    fn schedule_counts_pass_two_then_consults_next() {
        let tdb = paper_tdb();
        let mut stats = MiningStats::default();
        let _ = apriori_some(&tdb, 2, &SequencePhaseOptions::default(), &mut stats);
        let forward_counted: Vec<usize> = stats
            .sequence_passes
            .iter()
            .filter(|p| !p.backward && p.counted > 0)
            .map(|p| p.k)
            .collect();
        // C2 is counted (25 candidates, 4 large → hit 0.16 → next = 3);
        // C3 generated from L2 is empty, so the forward phase ends there.
        assert_eq!(forward_counted, vec![2]);
        // Nothing was skipped, so no backward counting pass was needed.
        assert!(stats.sequence_passes.iter().all(|p| !p.backward));
    }

    #[test]
    fn max_length_respected() {
        let tdb = paper_tdb();
        let mut stats = MiningStats::default();
        let some = apriori_some(
            &tdb,
            2,
            &SequencePhaseOptions {
                max_length: Some(1),
                ..Default::default()
            },
            &mut stats,
        );
        assert!(some.iter().all(|s| s.ids.len() == 1));
    }
}
