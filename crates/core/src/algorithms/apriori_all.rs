//! **AprioriAll** (paper §4.1): count every length.
//!
//! Pass `k` generates candidates from the large `(k-1)`-sequences with
//! [`candidate::generate`], counts their customer support over the
//! transformed database, and keeps the large ones. The loop ends when a
//! pass produces no candidates or no large sequences. Everything large is
//! returned; the maximal phase prunes afterwards (which the paper notes
//! wastes counting effort on non-maximal sequences — the motivation for the
//! Some variants).

use super::candidate;
use crate::arena::CandidateArena;
use crate::counting::{CountingContext, CountingStrategy, TreeParams};
use crate::dataset::Dataset;
use crate::phases::maximal::LargeIdSequence;
use crate::stats::Stopwatch;
use crate::stats::{MiningStats, SequencePassStats};
use crate::vertical::VerticalParams;
use seqpat_itemset::Parallelism;

/// Options shared by all three sequence-phase algorithms.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequencePhaseOptions {
    /// Counting strategy for support passes.
    pub counting: CountingStrategy,
    /// Hash-tree shape (used when counting with trees).
    pub tree_params: TreeParams,
    /// Optional hard cap on sequence length (`None` = unbounded, as in the
    /// paper).
    pub max_length: Option<usize>,
    /// Worker threads for the counting passes. Parallel runs are
    /// bit-identical to serial ones (see `counting`).
    pub parallelism: Parallelism,
    /// Vertical-strategy knobs (occurrence-list cache cap).
    pub vertical: VerticalParams,
    /// Customers per counting shard (`None` = count the whole database at
    /// once). Sharded runs return bit-identical supports; see `counting`.
    pub shard_customers: Option<usize>,
}

impl SequencePhaseOptions {
    /// The per-run [`CountingContext`] these options describe. Resolves
    /// `Auto` up front so the decision is recorded in the run's stats even
    /// when mining finishes before any counting pass runs.
    pub fn context(&self, ds: &dyn Dataset) -> CountingContext {
        let mut ctx = CountingContext::new(
            self.counting,
            self.tree_params,
            self.parallelism,
            self.vertical,
        )
        .with_shard_customers(self.shard_customers);
        ctx.resolved_strategy(ds);
        ctx
    }
}

/// The large 1-sequences: every litemset id, with the support the litemset
/// phase already counted (`support(⟨l⟩)` equals the customer support of the
/// itemset `l` by definition).
pub fn large_one_sequences(ds: &dyn Dataset) -> Vec<LargeIdSequence> {
    ds.table()
        .iter()
        .map(|(id, _, support)| LargeIdSequence {
            ids: vec![id],
            support,
        })
        .collect()
}

/// Runs AprioriAll. Returns **all** large sequences (every length).
pub fn apriori_all(
    ds: &dyn Dataset,
    min_count: u64,
    options: &SequencePhaseOptions,
    stats: &mut MiningStats,
) -> Vec<LargeIdSequence> {
    let mut ctx = options.context(ds);
    let pass_start = Stopwatch::start();
    let l1 = large_one_sequences(ds);
    stats.record_pass(SequencePassStats {
        k: 1,
        generated: l1.len() as u64,
        counted: 0,
        large: l1.len() as u64,
        backward: false,
        pruned_by_containment: 0,
        pass_time: pass_start.elapsed(),
    });

    let mut all: Vec<LargeIdSequence> = Vec::new();
    let mut current: Vec<LargeIdSequence> = l1;
    let mut k = 2usize;
    loop {
        if current.is_empty() {
            break;
        }
        if options.max_length.is_some_and(|cap| k > cap) {
            break;
        }
        let pass_start = Stopwatch::start();
        // Pass 2 fast path: C2 is always the full |L1|² pair grid, so count
        // pairs directly in one database scan (see counting.rs).
        if k == 2 {
            all.append(&mut current);
            let (generated, l2) = ctx.large_two(ds, min_count);
            stats.record_pass(SequencePassStats {
                k,
                generated,
                counted: generated,
                large: l2.len() as u64,
                backward: false,
                pruned_by_containment: 0,
                pass_time: pass_start.elapsed(),
            });
            current = l2;
            k += 1;
            continue;
        }
        let prev_ids = CandidateArena::from_rows(k - 1, current.iter().map(|s| s.ids.as_slice()));
        all.append(&mut current);
        let candidates = candidate::generate(&prev_ids);
        if candidates.is_empty() {
            break;
        }
        let supports = ctx.count(ds, &candidates);
        let next: Vec<LargeIdSequence> = candidates
            .iter()
            .zip(&supports)
            .filter(|&(_, &s)| s >= min_count)
            .map(|(ids, &support)| LargeIdSequence {
                ids: ids.to_vec(),
                support,
            })
            .collect();
        stats.record_pass(SequencePassStats {
            k,
            generated: candidates.num_candidates() as u64,
            counted: candidates.num_candidates() as u64,
            large: next.len() as u64,
            backward: false,
            pruned_by_containment: 0,
            pass_time: pass_start.elapsed(),
        });
        current = next;
        k += 1;
    }
    all.append(&mut current);
    ctx.flush_into(stats);
    all
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::phases::litemset::{litemset_phase, tests::paper_db};
    use crate::phases::transform::transform_phase;
    use crate::types::transformed::TransformedDatabase;
    use seqpat_itemset::AprioriConfig;

    pub(crate) fn paper_tdb() -> TransformedDatabase {
        let db = paper_db();
        let out = litemset_phase(&db, 2, &AprioriConfig::default());
        transform_phase(&db, out.table)
    }

    fn render(tdb: &TransformedDatabase, seqs: &[LargeIdSequence]) -> Vec<String> {
        let mut v: Vec<String> = seqs
            .iter()
            .map(|s| format!("{}:{}", tdb.to_sequence(&s.ids), s.support))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn paper_example_all_large_sequences() {
        // Paper §4, Figure "large sequences": with minsup 25% (2 customers)
        // the large sequences in transformed space are the five 1-sequences
        // and four 2-sequences ⟨(30)(40)⟩ ⟨(30)(40 70)⟩ ⟨(30)(70)⟩ ⟨(30)(90)⟩.
        let tdb = paper_tdb();
        let mut stats = MiningStats::default();
        let all = apriori_all(&tdb, 2, &SequencePhaseOptions::default(), &mut stats);
        assert_eq!(
            render(&tdb, &all),
            vec![
                "<(30)(40 70)>:2",
                "<(30)(40)>:2",
                "<(30)(70)>:2",
                "<(30)(90)>:2",
                "<(30)>:4",
                "<(40 70)>:2",
                "<(40)>:2",
                "<(70)>:3",
                "<(90)>:3",
            ]
        );
    }

    #[test]
    fn pass_stats_recorded() {
        let tdb = paper_tdb();
        let mut stats = MiningStats::default();
        let _ = apriori_all(&tdb, 2, &SequencePhaseOptions::default(), &mut stats);
        // Pass 1 (litemsets), pass 2 (25 candidates), pass 3 (generated from
        // the four large 2-sequences).
        assert_eq!(stats.sequence_passes[0].k, 1);
        assert_eq!(stats.sequence_passes[0].large, 5);
        assert_eq!(stats.sequence_passes[1].k, 2);
        assert_eq!(stats.sequence_passes[1].generated, 25);
        assert_eq!(stats.sequence_passes[1].large, 4);
    }

    #[test]
    fn all_counting_strategies_give_identical_results() {
        let tdb = paper_tdb();
        let run = |counting: CountingStrategy| {
            let mut stats = MiningStats::default();
            let mut out = apriori_all(
                &tdb,
                2,
                &SequencePhaseOptions {
                    counting,
                    ..Default::default()
                },
                &mut stats,
            );
            out.sort_by(|x, y| x.ids.cmp(&y.ids));
            (out, stats)
        };
        let (a, _) = run(CountingStrategy::Direct);
        let (b, _) = run(CountingStrategy::HashTree);
        // Pass 3 of the paper example prunes every candidate, so the
        // vertical run never even builds its index — but the answers match.
        let (c, _) = run(CountingStrategy::Vertical);
        let (d, _) = run(CountingStrategy::Bitmap);
        let (e, _) = run(CountingStrategy::Auto);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
        assert_eq!(a, e);
    }

    #[test]
    fn max_length_caps_growth() {
        let tdb = paper_tdb();
        let mut stats = MiningStats::default();
        let all = apriori_all(
            &tdb,
            2,
            &SequencePhaseOptions {
                max_length: Some(1),
                ..Default::default()
            },
            &mut stats,
        );
        assert!(all.iter().all(|s| s.ids.len() == 1));
    }

    #[test]
    fn empty_transformed_database() {
        let db = crate::Database::from_rows(vec![(1, 1, vec![1])]);
        let out = litemset_phase(&db, 2, &AprioriConfig::default());
        let tdb = transform_phase(&db, out.table);
        let mut stats = MiningStats::default();
        let all = apriori_all(&tdb, 2, &SequencePhaseOptions::default(), &mut stats);
        assert!(all.is_empty());
    }
}
