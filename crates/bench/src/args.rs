//! Minimal command-line parsing shared by the experiment binaries (no
//! external dependency; the flags are few and uniform).

/// Common experiment options.
#[derive(Debug, Clone)]
pub struct Args {
    /// `--customers N` — database size `|D|` (default 2 000).
    pub customers: usize,
    /// `--seed S` — generator seed (default 42).
    pub seed: u64,
    /// `--out DIR` — directory for CSV output (default `results`).
    pub out_dir: String,
    /// `--quick` — shrink sweeps for smoke runs.
    pub quick: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            customers: 2_000,
            seed: 42,
            out_dir: "results".into(),
            quick: false,
        }
    }
}

impl Args {
    /// Parses `std::env::args`, panicking with a usage message on malformed
    /// input (these are experiment drivers, not user-facing tools).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--customers" => out.customers = expect_value(&mut iter, &flag),
                "--seed" => out.seed = expect_value(&mut iter, &flag),
                "--out" => {
                    out.out_dir = iter
                        .next()
                        .unwrap_or_else(|| panic!("{flag} requires a value"))
                }
                "--quick" => out.quick = true,
                "--help" | "-h" => {
                    println!("flags: --customers N  --seed S  --out DIR  --quick");
                    // Only ever called from the bench binaries' mains.
                    #[allow(clippy::disallowed_methods)]
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
        }
        out
    }

    /// Writes `rows` as CSV (with `header`) to `<out_dir>/<name>.csv`,
    /// creating the directory if needed. Returns the path written.
    pub fn write_csv(
        &self,
        name: &str,
        header: &str,
        rows: &[String],
    ) -> std::io::Result<std::path::PathBuf> {
        use std::io::Write;
        std::fs::create_dir_all(&self.out_dir)?;
        let path = std::path::Path::new(&self.out_dir).join(format!("{name}.csv"));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{header}")?;
        for row in rows {
            writeln!(f, "{row}")?;
        }
        f.flush()?;
        Ok(path)
    }
}

fn expect_value<T: std::str::FromStr>(iter: &mut impl Iterator<Item = String>, flag: &str) -> T {
    iter.next()
        .unwrap_or_else(|| panic!("{flag} requires a value"))
        .parse()
        .unwrap_or_else(|_| panic!("invalid value for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.customers, 2_000);
        assert_eq!(a.seed, 42);
        assert_eq!(a.out_dir, "results");
        assert!(!a.quick);
    }

    #[test]
    fn all_flags() {
        let a = parse(&[
            "--customers",
            "500",
            "--seed",
            "7",
            "--out",
            "/tmp/x",
            "--quick",
        ]);
        assert_eq!(a.customers, 500);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out_dir, "/tmp/x");
        assert!(a.quick);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--nope"]);
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn missing_value_panics() {
        let _ = parse(&["--seed"]);
    }

    #[test]
    fn csv_written() {
        let dir = std::env::temp_dir().join("seqpat_bench_args_test");
        let a = Args {
            out_dir: dir.to_string_lossy().into_owned(),
            ..Args::default()
        };
        let path = a
            .write_csv("t", "a,b", &["1,2".into(), "3,4".into()])
            .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(path).ok();
    }
}
