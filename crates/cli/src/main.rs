//! `seqmine` — command-line front end for the workspace.
//!
//! ```text
//! seqmine gen   --out data.spmf [--dataset C10-T2.5-S4-I1.25] [--customers N] [--seed S]
//!               [--format spmf|csv|colstore] [--minsup F]  (colstore requires --minsup;
//!               customers are streamed to disk, never resident all at once)
//! seqmine mine  --in data.spmf  --minsup 0.01 [--algorithm apriori-all|apriori-some|dynamic-some|prefixspan]
//!               [--step K] [--all] [--max-length L] [--window W] [--threads N|auto]
//!               [--strategy direct|hashtree|vertical|bitmap|auto] [--vertical-cache-mb N]
//!               [--backend mem|mmap] [--shard-customers N]
//!               [--format spmf|csv] [--stats]
//! seqmine stats --in data.spmf [--format spmf|csv]
//! seqmine convert --in data.spmf --out data.csv  (format inferred from extensions;
//!               `--out x.colstore --minsup F` builds the on-disk transformed store)
//! seqmine queries --index idx.seqpats --out q.txt [--count N] [--skew F] [--miss-rate F] [--seed S]
//! seqmine query --index idx.seqpats (--prefix "10 20 -1" | --queries q.txt) [--k N] [--oracle] [--stats]
//! seqmine serve --index idx.seqpats --queries q.txt [--threads N] [--repeat N] [--k N]
//! ```
//!
//! `mine --index-out idx.seqpats` additionally compiles the mined maximal
//! patterns into a `SEQPATS1` prefix-trie index for the serving commands.

mod serve;

use std::process::ExitCode;

use seqpat_core::{
    Algorithm, CountingStrategy, Database, MinSupport, Miner, MinerConfig, MiningResult,
    Parallelism,
};
use seqpat_datagen::{generate, stream, GenParams};
use seqpat_gsp::{gsp, gsp_maximal, GspConfig};
use seqpat_io::stream::min_count_for;
use seqpat_io::{build_colstore, csv, spmf, ColstoreDataset, DatasetStats};
use seqpat_prefixspan::{prefixspan, prefixspan_maximal, PrefixSpanConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "gen" => cmd_gen(rest),
        "mine" => cmd_mine(rest),
        "stats" => cmd_stats(rest),
        "convert" => cmd_convert(rest),
        "queries" => serve::cmd_queries(rest),
        "query" => serve::cmd_query(rest),
        "serve" => serve::cmd_serve(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
seqmine — sequential pattern mining (Agrawal & Srikant, ICDE 1995)

commands:
  gen      generate a synthetic dataset        (--out FILE [--dataset NAME] [--customers N] [--seed S] [--format spmf|csv|colstore] [--minsup F])
  mine     mine maximal sequential patterns    (--in FILE --minsup F [--algorithm NAME] [--step K] [--all] [--max-length L] [--window W] [--threads N|auto] [--strategy direct|hashtree|vertical|bitmap|auto] [--vertical-cache-mb N] [--backend mem|mmap] [--shard-customers N] [--stats])
  stats    print dataset statistics            (--in FILE)
  convert  convert between spmf and csv        (--in FILE --out FILE; --out x.colstore --minsup F builds the on-disk store)
  queries  sample a query workload from an index (--index FILE --out FILE [--count N] [--skew F] [--miss-rate F] [--seed S])
  query    answer prefix queries against an index (--index FILE --prefix STR|--queries FILE [--k N] [--oracle] [--stats])
  serve    replay a query workload concurrently (--index FILE --queries FILE [--threads N] [--repeat N] [--k N])

algorithms: apriori-all (default), apriori-some, dynamic-some, prefixspan,
            gsp (supports --min-gap G --max-gap G --element-window W)
mine --index-out FILE writes a SEQPATS1 prefix-trie index for query/serve";

/// Tiny flag parser: `--key value` pairs plus boolean switches.
struct Flags(Vec<(String, Option<String>)>);

impl Flags {
    fn parse(args: &[String], switches: &[&str]) -> Result<Self, String> {
        let mut out = Vec::new();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected a --flag, got {flag:?}"));
            };
            if switches.contains(&name) {
                out.push((name.to_string(), None));
            } else {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{name} requires a value"))?;
                out.push((name.to_string(), Some(value.clone())));
            }
        }
        Ok(Self(out))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|(n, _)| n == name)
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        self.get(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("invalid value for --{name}: {v:?}"))
            })
            .transpose()
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }
}

/// File format selection, by flag or extension.
fn detect_format(flags: &Flags, path: &str) -> Result<&'static str, String> {
    if let Some(f) = flags.get("format") {
        return match f {
            "spmf" => Ok("spmf"),
            "csv" => Ok("csv"),
            "colstore" => Ok("colstore"),
            other => Err(format!(
                "unknown format {other:?} (use spmf, csv, or colstore)"
            )),
        };
    }
    if path.ends_with(".csv") {
        Ok("csv")
    } else if path.ends_with(".colstore") {
        Ok("colstore")
    } else {
        Ok("spmf")
    }
}

fn load(path: &str, format: &str) -> Result<Database, String> {
    if format == "colstore" {
        return Err(format!(
            "{path}: a colstore holds the transformed database; only `mine --backend mmap` reads it"
        ));
    }
    let db = match format {
        "csv" => csv::read_file(path),
        _ => spmf::read_file(path),
    };
    db.map_err(|e| format!("reading {path}: {e}"))
}

fn store(db: &Database, path: &str, format: &str) -> Result<(), String> {
    let r = match format {
        "csv" => csv::write_file(db, path),
        _ => spmf::write_file(db, path),
    };
    r.map_err(|e| format!("writing {path}: {e}"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let out = flags.require("out")?;
    let dataset = flags.get("dataset").unwrap_or("C10-T2.5-S4-I1.25");
    let customers = flags.get_parsed::<usize>("customers")?.unwrap_or(1_000);
    let seed = flags.get_parsed::<u64>("seed")?.unwrap_or(42);
    let params = GenParams::paper_dataset(dataset)
        .ok_or_else(|| {
            format!(
                "unknown dataset {dataset:?}; known: {}",
                GenParams::paper_dataset_names().join(", ")
            )
        })?
        .customers(customers);
    let format = detect_format(&flags, out)?;
    if format == "colstore" {
        // Out-of-core generation: customers stream straight through the
        // litemset/transform passes to disk; the full database is never
        // resident. The transformed store depends on minsup, so it is
        // required here.
        let minsup: f64 = flags
            .get_parsed("minsup")?
            .ok_or("--format colstore requires --minsup")?;
        if !(0.0..=1.0).contains(&minsup) || minsup == 0.0 {
            return Err("--minsup must be in (0, 1]".into());
        }
        let min_count = min_count_for(customers as u64, minsup);
        let summary = build_colstore(
            || stream(&params, seed),
            min_count,
            &Default::default(),
            4096,
            out,
        )
        .map_err(|e| format!("writing {out}: {e}"))?;
        println!(
            "generated {dataset} with {} customers → {out} (colstore: {} litemsets, {} litemset passes, minsup {minsup})",
            summary.total_customers, summary.litemsets, summary.passes
        );
        return Ok(());
    }
    let db = generate(&params, seed);
    store(&db, out, format)?;
    println!(
        "generated {dataset} with {} customers ({} transactions) → {out}",
        db.num_customers(),
        db.num_transactions()
    );
    Ok(())
}

fn cmd_mine(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["all", "stats"])?;
    let input = flags.require("in")?;
    let minsup: f64 = flags.get_parsed("minsup")?.ok_or("--minsup is required")?;
    if !(0.0..=1.0).contains(&minsup) || minsup == 0.0 {
        return Err("--minsup must be in (0, 1]".into());
    }
    let format = detect_format(&flags, input)?;
    // Backend selection: "mem" (default) loads the whole database; "mmap"
    // opens an on-disk colstore (see `gen --format colstore` / `convert`)
    // and pages customer rows in shard by shard. A .colstore input implies
    // --backend mmap.
    let backend = match flags.get("backend") {
        None if format == "colstore" => "mmap",
        None | Some("mem") => "mem",
        Some("mmap") => "mmap",
        Some(other) => return Err(format!("unknown backend {other:?} (use mem or mmap)")),
    };
    let shard_customers = flags.get_parsed::<usize>("shard-customers")?;
    if shard_customers == Some(0) {
        return Err("--shard-customers must be positive".into());
    }
    let algorithm_name = flags.get("algorithm").unwrap_or("apriori-all");
    let include_all = flags.has("all");
    let max_length = flags.get_parsed::<usize>("max-length")?;
    // Support counting threads: a number, or "auto" (default) for one per
    // core. Results are bit-identical regardless of the value.
    let parallelism = match flags.get("threads") {
        None | Some("auto") => Parallelism::Auto,
        Some(v) => {
            let n: usize = v.parse().map_err(|_| {
                format!("invalid value for --threads: {v:?} (use a number or auto)")
            })?;
            Parallelism::threads(n)
        }
    };
    // Support counting strategy (paper algorithms only; ignored by
    // prefixspan/gsp which have their own counting machinery). "auto"
    // resolves to bitmap/vertical/hashtree from database statistics after
    // the transformation phase (--stats shows the choice and why).
    let strategy = match flags.get("strategy") {
        None => CountingStrategy::default(),
        Some(v) => v.parse::<CountingStrategy>().map_err(|e| e.to_string())?,
    };
    // Vertical strategy pass-to-pass occurrence-list cache cap (MiB).
    let vertical_cache_mb = flags.get_parsed::<usize>("vertical-cache-mb")?;

    // Loads the resident database, applying the optional sliding-window
    // re-grouping (paper's conclusion extension): transactions within
    // --window time units merge into one element.
    let load_mem_db = || -> Result<Database, String> {
        let mut db = load(input, format)?;
        if let Some(window) = flags.get_parsed::<i64>("window")? {
            if window < 0 {
                return Err("--window must be non-negative".into());
            }
            db = Database::from_rows_windowed(db.to_rows(), window);
        }
        Ok(db)
    };

    if backend == "mmap" && (algorithm_name == "gsp" || algorithm_name == "prefixspan") {
        return Err(format!(
            "--backend mmap supports the paper algorithms only; {algorithm_name} needs the raw database (--backend mem)"
        ));
    }

    // The serving index is compiled from litemset-id-space patterns, which
    // only the paper algorithms carry through `MiningResult`.
    if flags.get("index-out").is_some()
        && (algorithm_name == "gsp" || algorithm_name == "prefixspan")
    {
        return Err(format!(
            "--index-out requires a paper algorithm (apriori-all/-some, dynamic-some); {algorithm_name} does not produce id-space patterns"
        ));
    }

    if algorithm_name == "gsp" {
        let db = load_mem_db()?;
        let mut config = GspConfig::default();
        if let Some(g) = flags.get_parsed::<i64>("min-gap")? {
            config = config.min_gap(g);
        }
        if let Some(g) = flags.get_parsed::<i64>("max-gap")? {
            config = config.max_gap(g);
        }
        if let Some(w) = flags.get_parsed::<i64>("element-window")? {
            config = config.window(w);
        }
        let patterns = if include_all {
            gsp(&db, MinSupport::Fraction(minsup), &config)
        } else {
            gsp_maximal(&db, MinSupport::Fraction(minsup), &config)
        };
        for p in &patterns {
            println!("{p} #SUP: {}", p.support);
        }
        eprintln!("{} patterns (gsp, {config:?})", patterns.len());
        return Ok(());
    }

    if algorithm_name == "prefixspan" {
        let db = load_mem_db()?;
        let config = PrefixSpanConfig {
            max_length,
            ..Default::default()
        };
        let patterns = if include_all {
            prefixspan(&db, MinSupport::Fraction(minsup), &config)
        } else {
            prefixspan_maximal(&db, MinSupport::Fraction(minsup), &config)
        };
        for p in &patterns {
            println!("{p} #SUP: {}", p.support);
        }
        eprintln!("{} patterns (prefixspan)", patterns.len());
        return Ok(());
    }

    let step = flags.get_parsed::<usize>("step")?.unwrap_or(2);
    let algorithm = match algorithm_name {
        "apriori-all" => Algorithm::AprioriAll,
        "apriori-some" => Algorithm::AprioriSome,
        "dynamic-some" => Algorithm::DynamicSome { step },
        other => {
            return Err(format!(
                "unknown algorithm {other:?} (apriori-all, apriori-some, dynamic-some, prefixspan, gsp)"
            ))
        }
    };
    let mut config = MinerConfig::new(MinSupport::Fraction(minsup))
        .algorithm(algorithm)
        .include_non_maximal(include_all)
        .parallelism(parallelism)
        .counting(strategy);
    if let Some(cap) = max_length {
        config = config.max_length(cap);
    }
    if let Some(mb) = vertical_cache_mb {
        config.vertical.cache_cap_bytes = mb << 20;
    }
    if let Some(s) = shard_customers {
        config = config.shard_customers(s);
    }
    let result: MiningResult = if backend == "mmap" {
        if flags.get("window").is_some() {
            return Err(
                "--window re-groups raw transactions; a colstore is already transformed".into(),
            );
        }
        let store = ColstoreDataset::open(input).map_err(|e| format!("opening {input}: {e}"))?;
        Miner::new(config).mine_dataset(&store)
    } else {
        let db = load_mem_db()?;
        Miner::new(config).mine(&db)
    };
    for p in &result.patterns {
        println!("{p} #SUP: {}", p.support);
    }
    eprintln!(
        "{} patterns at minsup {minsup} (count ≥ {}) over {} customers [{algorithm}, {strategy} counting]",
        result.patterns.len(),
        result.min_support_count,
        result.num_customers
    );
    if let Some(index_out) = flags.get("index-out") {
        let trie = seqpat_serve::PatternTrie::build(
            &result.id_patterns,
            result.table.clone(),
            result.num_customers as u64,
        )
        .map_err(|e| format!("building index: {e}"))?;
        trie.save(index_out)
            .map_err(|e| format!("writing {index_out}: {e}"))?;
        eprintln!(
            "index: {} patterns → {index_out} ({} nodes, {} children, {} bytes)",
            trie.num_patterns(),
            trie.num_nodes(),
            trie.num_children(),
            trie.serialized_len()
        );
    }
    if flags.has("stats") {
        let s = &result.stats;
        eprintln!(
            "litemsets: {}  candidates generated/counted: {}/{}  containment tests: {}  threads: {}",
            s.num_litemsets,
            s.candidates_generated,
            s.candidates_counted,
            s.containment_tests,
            s.threads_used
        );
        if s.probe_nodes > 0 {
            eprintln!("hash tree: probe nodes visited: {}", s.probe_nodes);
        }
        eprintln!(
            "sequences: {} large, {} maximal  passes: {} litemset, {} sequence",
            s.large_sequences,
            s.maximal_sequences,
            s.litemset_passes.len(),
            s.sequence_passes.len()
        );
        for p in &s.sequence_passes {
            eprintln!(
                "  pass k={}{}: generated {}  counted {}  large {}  pruned {}  in {:?}",
                p.k,
                if p.backward { " (backward)" } else { "" },
                p.generated,
                p.counted,
                p.large,
                p.pruned_by_containment,
                p.pass_time
            );
        }
        if let Some(d) = &s.auto_decision {
            eprintln!(
                "auto: chose {} ({}) — customers: {}  litemsets: {}  mean length: {:.2}  density: {:.4}",
                d.choice, d.reason, d.customers, d.litemsets, d.mean_len, d.density
            );
        }
        if strategy == CountingStrategy::Vertical || s.vertical_peak_bytes > 0 {
            eprintln!(
                "vertical: index build {:?}  joins: {}  gallop skips: {}  peak index bytes: {}",
                s.vertical_index_time, s.join_ops, s.gallop_skips, s.vertical_peak_bytes
            );
        }
        if strategy == CountingStrategy::Bitmap || s.bitmap_words > 0 {
            eprintln!(
                "bitmap: index build {:?}  sstep ops: {}  lane words: {}  carry fixups: {}  arena words: {}",
                s.bitmap_index_time, s.sstep_ops, s.lane_words, s.carry_fixups, s.bitmap_words
            );
        }
        if s.shards_processed > 0 {
            eprintln!(
                "shards: {} processed  {} bytes paged in",
                s.shards_processed, s.shard_bytes
            );
        }
        eprintln!("memory: peak rss bytes: {}", s.peak_rss_bytes);
        eprintln!(
            "times: litemset {:?}, transform {:?}, sequence {:?}, maximal {:?}",
            s.litemset_time, s.transform_time, s.sequence_time, s.maximal_time
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let input = flags.require("in")?;
    let format = detect_format(&flags, input)?;
    let db = load(input, format)?;
    println!("{}", DatasetStats::compute(&db));
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let input = flags.require("in")?;
    let output = flags.require("out")?;
    let in_format = if input.ends_with(".csv") {
        "csv"
    } else {
        "spmf"
    };
    let out_format = if output.ends_with(".csv") {
        "csv"
    } else if output.ends_with(".colstore") {
        "colstore"
    } else {
        "spmf"
    };
    let db = load(input, in_format)?;
    if out_format == "colstore" {
        // The store holds the *transformed* database, so the litemset
        // threshold must be fixed at conversion time.
        let minsup: f64 = flags
            .get_parsed("minsup")?
            .ok_or("a .colstore output requires --minsup")?;
        if !(0.0..=1.0).contains(&minsup) || minsup == 0.0 {
            return Err("--minsup must be in (0, 1]".into());
        }
        let min_count = min_count_for(db.num_customers() as u64, minsup);
        let summary = build_colstore(
            || db.customers().iter().cloned(),
            min_count,
            &Default::default(),
            4096,
            output,
        )
        .map_err(|e| format!("writing {output}: {e}"))?;
        println!(
            "converted {input} ({in_format}) → {output} (colstore: {} customers, {} litemsets at minsup {minsup})",
            summary.total_customers, summary.litemsets
        );
        return Ok(());
    }
    store(&db, output, out_format)?;
    println!("converted {input} ({in_format}) → {output} ({out_format})");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str], switches: &[&str]) -> Flags {
        Flags::parse(
            &args.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            switches,
        )
        .expect("parse")
    }

    #[test]
    fn flags_parse_pairs_and_switches() {
        let f = flags(&["--in", "x.spmf", "--all", "--minsup", "0.1"], &["all"]);
        assert_eq!(f.get("in"), Some("x.spmf"));
        assert!(f.has("all"));
        assert_eq!(f.get_parsed::<f64>("minsup").unwrap(), Some(0.1));
        assert_eq!(f.get("nope"), None);
        assert!(f.require("in").is_ok());
        assert!(f.require("nope").is_err());
    }

    #[test]
    fn flags_reject_bare_words_and_missing_values() {
        let args = vec!["oops".to_string()];
        assert!(Flags::parse(&args, &[]).is_err());
        let args = vec!["--in".to_string()];
        assert!(Flags::parse(&args, &[]).is_err());
    }

    #[test]
    fn bad_numeric_value_is_an_error() {
        let f = flags(&["--minsup", "abc"], &[]);
        assert!(f.get_parsed::<f64>("minsup").is_err());
    }

    #[test]
    fn format_detection() {
        let none = flags(&[], &[]);
        assert_eq!(detect_format(&none, "data.csv").unwrap(), "csv");
        assert_eq!(detect_format(&none, "data.spmf").unwrap(), "spmf");
        assert_eq!(detect_format(&none, "data.txt").unwrap(), "spmf");
        let forced = flags(&["--format", "csv"], &[]);
        assert_eq!(detect_format(&forced, "data.spmf").unwrap(), "csv");
        let bad = flags(&["--format", "xml"], &[]);
        assert!(detect_format(&bad, "x").is_err());
    }

    #[test]
    fn gen_mine_stats_end_to_end() {
        let dir = std::env::temp_dir().join("seqmine_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.spmf");
        let out = path.to_string_lossy().into_owned();
        cmd_gen(&[
            "--out".into(),
            out.clone(),
            "--customers".into(),
            "50".into(),
            "--seed".into(),
            "3".into(),
        ])
        .expect("gen");
        cmd_stats(&["--in".into(), out.clone()]).expect("stats");
        cmd_mine(&[
            "--in".into(),
            out.clone(),
            "--minsup".into(),
            "0.2".into(),
            "--algorithm".into(),
            "apriori-some".into(),
        ])
        .expect("mine");
        let csv_out = dir.join("tiny.csv").to_string_lossy().into_owned();
        cmd_convert(&["--in".into(), out, "--out".into(), csv_out.clone()]).expect("convert");
        cmd_mine(&[
            "--in".into(),
            csv_out,
            "--minsup".into(),
            "0.2".into(),
            "--algorithm".into(),
            "prefixspan".into(),
        ])
        .expect("mine csv via prefixspan");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mine_rejects_bad_arguments() {
        assert!(cmd_mine(&[
            "--in".into(),
            "/nonexistent".into(),
            "--minsup".into(),
            "0.5".into()
        ])
        .is_err());
        assert!(cmd_mine(&["--minsup".into(), "0.5".into()]).is_err());
        let dir = std::env::temp_dir().join("seqmine_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.spmf").to_string_lossy().into_owned();
        cmd_gen(&[
            "--out".into(),
            path.clone(),
            "--customers".into(),
            "10".into(),
        ])
        .unwrap();
        assert!(cmd_mine(&["--in".into(), path.clone(), "--minsup".into(), "2.0".into()]).is_err());
        assert!(cmd_mine(&[
            "--in".into(),
            path,
            "--minsup".into(),
            "0.5".into(),
            "--algorithm".into(),
            "bogus".into()
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mine_accepts_thread_settings() {
        let dir = std::env::temp_dir().join("seqmine_cli_threads_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.spmf").to_string_lossy().into_owned();
        cmd_gen(&[
            "--out".into(),
            path.clone(),
            "--customers".into(),
            "30".into(),
        ])
        .unwrap();
        for threads in ["auto", "1", "2"] {
            cmd_mine(&[
                "--in".into(),
                path.clone(),
                "--minsup".into(),
                "0.2".into(),
                "--threads".into(),
                threads.into(),
            ])
            .unwrap_or_else(|e| panic!("--threads {threads}: {e}"));
        }
        assert!(cmd_mine(&[
            "--in".into(),
            path,
            "--minsup".into(),
            "0.2".into(),
            "--threads".into(),
            "bogus".into(),
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mine_accepts_strategy_settings() {
        let dir = std::env::temp_dir().join("seqmine_cli_strategy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.spmf").to_string_lossy().into_owned();
        cmd_gen(&[
            "--out".into(),
            path.clone(),
            "--customers".into(),
            "30".into(),
        ])
        .unwrap();
        for strategy in [
            "direct",
            "hashtree",
            "hash-tree",
            "vertical",
            "bitmap",
            "auto",
        ] {
            cmd_mine(&[
                "--in".into(),
                path.clone(),
                "--minsup".into(),
                "0.2".into(),
                "--strategy".into(),
                strategy.into(),
                "--stats".into(),
            ])
            .unwrap_or_else(|e| panic!("--strategy {strategy}: {e}"));
        }
        // The vertical cache cap is settable (0 disables retention).
        for mb in ["0", "16"] {
            cmd_mine(&[
                "--in".into(),
                path.clone(),
                "--minsup".into(),
                "0.2".into(),
                "--strategy".into(),
                "vertical".into(),
                "--vertical-cache-mb".into(),
                mb.into(),
            ])
            .unwrap_or_else(|e| panic!("--vertical-cache-mb {mb}: {e}"));
        }
        assert!(cmd_mine(&[
            "--in".into(),
            path.clone(),
            "--minsup".into(),
            "0.2".into(),
            "--vertical-cache-mb".into(),
            "lots".into(),
        ])
        .is_err());
        assert!(cmd_mine(&[
            "--in".into(),
            path,
            "--minsup".into(),
            "0.2".into(),
            "--strategy".into(),
            "bogus".into(),
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mine_with_window_merges_elements() {
        let dir = std::env::temp_dir().join("seqmine_cli_window_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.csv").to_string_lossy().into_owned();
        std::fs::write(&path, "customer,time,items\n1,0,1\n1,1,2\n2,0,1\n2,1,2\n").unwrap();
        cmd_mine(&[
            "--in".into(),
            path.clone(),
            "--minsup".into(),
            "1.0".into(),
            "--window".into(),
            "1".into(),
        ])
        .expect("windowed mine");
        assert!(cmd_mine(&[
            "--in".into(),
            path,
            "--minsup".into(),
            "1.0".into(),
            "--window".into(),
            "-3".into(),
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn colstore_backend_end_to_end() {
        let dir = std::env::temp_dir().join("seqmine_cli_colstore_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spmf_path = dir.join("c.spmf").to_string_lossy().into_owned();
        cmd_gen(&[
            "--out".into(),
            spmf_path.clone(),
            "--customers".into(),
            "30".into(),
            "--seed".into(),
            "5".into(),
        ])
        .expect("gen spmf");

        // convert → colstore, then mine it through the mmap backend
        // (implied by the extension) with sharding and explicit flags.
        let col = dir.join("c.colstore").to_string_lossy().into_owned();
        cmd_convert(&[
            "--in".into(),
            spmf_path.clone(),
            "--out".into(),
            col.clone(),
            "--minsup".into(),
            "0.2".into(),
        ])
        .expect("convert to colstore");
        cmd_mine(&[
            "--in".into(),
            col.clone(),
            "--minsup".into(),
            "0.2".into(),
            "--max-length".into(),
            "4".into(),
            "--shard-customers".into(),
            "7".into(),
            "--stats".into(),
        ])
        .expect("mine colstore sharded");
        cmd_mine(&[
            "--in".into(),
            col.clone(),
            "--minsup".into(),
            "0.2".into(),
            "--max-length".into(),
            "4".into(),
            "--backend".into(),
            "mmap".into(),
        ])
        .expect("mine colstore explicit backend");

        // gen --format colstore streams straight to disk.
        let gen_col = dir.join("g.colstore").to_string_lossy().into_owned();
        cmd_gen(&[
            "--out".into(),
            gen_col.clone(),
            "--customers".into(),
            "25".into(),
            "--seed".into(),
            "5".into(),
            "--minsup".into(),
            "0.25".into(),
        ])
        .expect("gen colstore");
        cmd_mine(&[
            "--in".into(),
            gen_col.clone(),
            "--minsup".into(),
            "0.25".into(),
            "--max-length".into(),
            "4".into(),
        ])
        .expect("mine generated colstore");

        // Error surface: prefixspan/window/backends/shard sizes.
        let base = ["--in".to_string(), col.clone(), "--minsup".to_string()];
        assert!(cmd_mine(
            &[
                &base[..],
                &["0.2".into(), "--algorithm".into(), "prefixspan".into()]
            ]
            .concat()
        )
        .is_err());
        assert!(
            cmd_mine(&[&base[..], &["0.2".into(), "--window".into(), "1".into()]].concat())
                .is_err()
        );
        assert!(cmd_mine(
            &[
                &base[..],
                &["0.2".into(), "--backend".into(), "bogus".into()]
            ]
            .concat()
        )
        .is_err());
        assert!(cmd_mine(
            &[
                &base[..],
                &["0.2".into(), "--shard-customers".into(), "0".into()]
            ]
            .concat()
        )
        .is_err());
        assert!(cmd_gen(&[
            "--out".into(),
            gen_col.clone(),
            "--format".into(),
            "colstore".into()
        ])
        .is_err());
        assert!(cmd_stats(&["--in".into(), gen_col]).is_err());
        assert!(cmd_convert(&[
            "--in".into(),
            spmf_path,
            "--out".into(),
            dir.join("no-minsup.colstore")
                .to_string_lossy()
                .into_owned(),
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mine_index_out_builds_a_servable_index() {
        let dir = std::env::temp_dir().join("seqmine_cli_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.spmf").to_string_lossy().into_owned();
        let idx = dir.join("d.seqpats").to_string_lossy().into_owned();
        cmd_gen(&[
            "--out".into(),
            data.clone(),
            "--customers".into(),
            "40".into(),
            "--seed".into(),
            "7".into(),
        ])
        .expect("gen");
        cmd_mine(&[
            "--in".into(),
            data.clone(),
            "--minsup".into(),
            "0.1".into(),
            "--index-out".into(),
            idx.clone(),
        ])
        .expect("mine with index");
        let qfile = dir.join("q.txt").to_string_lossy().into_owned();
        serve::cmd_queries(&[
            "--index".into(),
            idx.clone(),
            "--out".into(),
            qfile.clone(),
            "--count".into(),
            "25".into(),
        ])
        .expect("queries");
        serve::cmd_query(&[
            "--index".into(),
            idx.clone(),
            "--queries".into(),
            qfile.clone(),
            "--stats".into(),
        ])
        .expect("query");
        serve::cmd_serve(&["--index".into(), idx.clone(), "--queries".into(), qfile])
            .expect("serve");
        // gsp/prefixspan cannot carry id-space patterns out.
        assert!(cmd_mine(&[
            "--in".into(),
            data,
            "--minsup".into(),
            "0.2".into(),
            "--algorithm".into(),
            "prefixspan".into(),
            "--index-out".into(),
            idx,
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_rejects_unknown_dataset() {
        assert!(cmd_gen(&[
            "--out".into(),
            "/tmp/x.spmf".into(),
            "--dataset".into(),
            "NOPE".into()
        ])
        .is_err());
    }
}
