//! # seqpat-bench — experiment harness.
//!
//! One binary per table/figure of the ICDE'95 evaluation (see DESIGN.md §5
//! for the experiment index):
//!
//! | bin | experiment |
//! |---|---|
//! | `exp_datasets` | E0 — the synthetic dataset table |
//! | `exp_minsup_sweep` | E1 — execution time vs minimum support, per dataset |
//! | `exp_relative` | E2 — times relative to AprioriAll |
//! | `exp_scaleup_customers` | E3 — scale-up with `|D|` |
//! | `exp_scaleup_ctrans` | E4 — scale-up with `|C|` |
//! | `exp_passes` | E5 — per-pass candidate/large counts |
//! | `exp_prefixspan` | E6 — PrefixSpan comparator (extension) |
//! | `exp_ablation` | E7 — counting-strategy & hash-tree ablations |
//! | `exp_gsp_constraints` | E8 — GSP time-constraint study (extension) |
//! | `exp_threads` | E9 — thread scaling of parallel support counting |
//! | `exp_ablation` | E10 — vertical-counting crossover sweep (same binary as E7) |
//! | `exp_bitmap` | E11 — bitmap-counting crossover sweep (density × minsup) |
//!
//! Every binary prints a paper-style table to stdout and writes a CSV under
//! `results/`. All accept `--customers N` (default 2 000 — laptop scale;
//! pass 250 000 for the paper's size), `--seed S` and `--out DIR`.
//!
//! Criterion micro-benchmarks live in `benches/`.

pub mod args;
pub mod harness;
pub mod table;

pub use args::Args;
pub use harness::{measure, MiningMeasurement};
pub use table::Table;
