//! # seqpat-rand-compat — offline stand-in for the `rand` crate
//!
//! The build environment for this workspace has no access to crates.io, so
//! the tiny slice of the `rand 0.8` API the workspace actually uses is
//! reimplemented here and wired in under the dependency name `rand` (see
//! the `[workspace.dependencies]` table). Covered surface:
//!
//! * [`Rng`] — `gen`, `gen::<f64>()`, `gen_range` over integer and float
//!   ranges (half-open and inclusive);
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64.
//!
//! The streams differ numerically from the real `rand::rngs::StdRng`
//! (ChaCha12), which is fine for this workspace: nothing pins exact drawn
//! values, only determinism per seed and distributional properties (the
//! datagen test suite checks means and moments, not bit patterns).

/// Sampling from the "standard" distribution of a type: uniform over the
/// full domain for integers, uniform in `[0, 1)` for floats, fair coin for
/// `bool` — mirroring `rand`'s `Standard` semantics for the types used.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Uniform sampling over a range type (`a..b` / `a..=b`).
pub trait UniformRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the (non-empty) range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The raw 64-bit uniform source every other method derives from.
    fn next_u64(&mut self) -> u64;

    /// Draws from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws uniformly from `range`; panics on an empty range.
    fn gen_range<Rge: UniformRange>(&mut self, range: Rge) -> Rge::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// `f64` uniform in `[0, 1)` with 53 random mantissa bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let drawn = (rng.next_u64() as u128) % span;
                (self.start as i128 + drawn as i128) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let drawn = (rng.next_u64() as u128) % span;
                (lo as i128 + drawn as i128) as $t
            }
        }
    )*};
}
uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = unit_f64(rng.next_u64());
        // u < 1 keeps the result strictly below `end`; adding `start`
        // keeps it at or above `start` (the half-open contract).
        self.start + u * (self.end - self.start)
    }
}

impl UniformRange for core::ops::Range<f32> {
    type Output = f32;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f32::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator — the workspace's `StdRng`.
    ///
    /// Not the real `rand` `StdRng` algorithm; see the crate docs for why
    /// that is acceptable here.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = r.gen_range(3usize..7);
            assert!((3..7).contains(&a));
            let b = r.gen_range(0u32..=4);
            assert!(b <= 4);
            let c = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
            let d = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&d));
        }
    }

    #[test]
    fn mean_of_unit_uniform_is_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut r = StdRng::seed_from_u64(4);
        let through_ref = draw(&mut &mut r);
        let _ = through_ref;
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = StdRng::seed_from_u64(5);
        let _ = r.gen_range(5usize..5);
    }
}
