//! The parallel-fan-out capture audit and the `determinism.json` artifact.
//!
//! The parser records every closure with its capture set
//! ([`crate::parser::ClosureSite`]); this module judges the ones handed to a
//! parallel sink (`thread::scope`, `spawn`, `map_chunks`). A closure that
//! runs on another thread while capturing `&mut` state — or interior-mutable
//! state (`Mutex`/`RefCell`/`Atomic*`), whose writes race by design — makes
//! chunk results depend on scheduling, which breaks the bit-identical
//! contract every parallel path in this workspace claims. Each such capture
//! is a `shared-mutable-capture-in-parallel` finding with a witness chain
//! `fn -> sink(closure@line) -> capture`.
//!
//! [`to_json`] renders the full audit — every fan-out site with its
//! captures and verdict, plus the reducer verdicts from
//! [`crate::dataflow::reduction_audit`] — as the `determinism.json`
//! artifact. The artifact is a pure function of the scanned sources: files
//! arrive sorted from the engine and closures/reducers are in source order,
//! so consecutive runs are byte-identical.

use crate::dataflow::ReducerAudit;
use crate::engine::json_escape;
use crate::parser::{CaptureMode, ParsedFile};
use crate::rules::{self, Violation};

/// Call names that hand a closure to another thread (or to the chunked
/// fan-out helper built on them).
const PARALLEL_SINKS: &[&str] = &["spawn", "scope", "map_chunks"];

/// True when `handed_to` names a parallel sink.
fn is_parallel_sink(handed_to: Option<&str>) -> bool {
    handed_to.is_some_and(|h| PARALLEL_SINKS.contains(&h))
}

/// The `shared-mutable-capture-in-parallel` rule over the parsed workspace.
pub fn shared_mutable_capture(parsed: &[ParsedFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in parsed {
        for def in file.fns.iter().filter(|d| !d.is_test) {
            for closure in &def.closures {
                if !is_parallel_sink(closure.handed_to.as_deref()) {
                    continue;
                }
                let sink = closure.handed_to.as_deref().unwrap_or("?");
                for cap in &closure.captures {
                    let (bad, how) = match (cap.mode, cap.interior_mut) {
                        (CaptureMode::ByMutRef, _) => (true, "&mut"),
                        (_, true) => (true, "interior-mutable"),
                        _ => (false, ""),
                    };
                    if !bad {
                        continue;
                    }
                    out.push(Violation {
                        path: file.path.clone(),
                        line: closure.line,
                        rule: rules::SHARED_MUTABLE_CAPTURE,
                        message: format!(
                            "closure handed to `{sink}` captures `{}` ({how}, {}); \
                             parallel chunks racing on shared state make results \
                             scheduling-dependent — give each chunk its own buffer \
                             and merge with an order-insensitive reducer",
                            cap.name,
                            cap.mode.as_str()
                        ),
                        chain: Some(format!(
                            "{} -> {sink}(closure@L{}) -> {how} {}",
                            def.name, closure.line, cap.name
                        )),
                    });
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Renders the determinism audit artifact (`--determinism-out`), schema
/// `seqpat-determinism-v1`. Byte-identical across runs over the same
/// sources.
pub fn to_json(parsed: &[ParsedFile], reducers: &[ReducerAudit]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"seqpat-determinism-v1\",\n");

    s.push_str("  \"fanout_sites\": [");
    let mut first = true;
    for file in parsed {
        for def in file.fns.iter().filter(|d| !d.is_test) {
            for closure in &def.closures {
                if !is_parallel_sink(closure.handed_to.as_deref()) {
                    continue;
                }
                let shared_mut = closure
                    .captures
                    .iter()
                    .any(|c| c.mode == CaptureMode::ByMutRef || c.interior_mut);
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str("\n    {");
                s.push_str(&format!("\"path\": \"{}\", ", json_escape(&file.path)));
                s.push_str(&format!("\"line\": {}, ", closure.line));
                s.push_str(&format!("\"fn\": \"{}\", ", json_escape(&def.name)));
                s.push_str(&format!(
                    "\"handed_to\": \"{}\", ",
                    json_escape(closure.handed_to.as_deref().unwrap_or(""))
                ));
                s.push_str(&format!("\"move\": {}, ", closure.is_move));
                s.push_str("\"captures\": [");
                for (i, c) in closure.captures.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&format!(
                        "{{\"name\": \"{}\", \"mode\": \"{}\", \"interior_mut\": {}}}",
                        json_escape(&c.name),
                        c.mode.as_str(),
                        c.interior_mut
                    ));
                }
                s.push_str("], ");
                s.push_str(&format!(
                    "\"verdict\": \"{}\"",
                    if shared_mut { "shared-mutable" } else { "ok" }
                ));
                s.push('}');
            }
        }
    }
    if !first {
        s.push_str("\n  ");
    }
    s.push_str("],\n");

    s.push_str("  \"reducers\": [");
    for (i, r) in reducers.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"path\": \"{}\", ", json_escape(&r.path)));
        s.push_str(&format!("\"fn\": \"{}\", ", json_escape(&r.fn_name)));
        s.push_str(&format!("\"line\": {}, ", r.line));
        s.push_str(&format!(
            "\"verdict\": \"{}\", ",
            if r.order_sensitive {
                "order-sensitive"
            } else {
                "order-insensitive"
            }
        ));
        s.push_str("\"ops\": [");
        for (j, op) in r.ops.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", json_escape(op)));
        }
        s.push_str("]}");
    }
    if !reducers.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}
