//! Vertical (id-list) support counting — [`CountingStrategy::Vertical`].
//!
//! The horizontal strategies re-scan every customer against every candidate
//! each pass. The vertical family (SPADE-style id-lists) inverts the
//! layout: after the transform phase a **vertical occurrence index** is
//! built once — for every litemset id, the flat customer-partitioned list
//! of `(customer, transaction-position)` occurrences — and a candidate's
//! support is computed by a *temporal merge-join* over occurrence lists,
//! touching only the customers where its parts actually occur.
//!
//! ## Occurrence lists
//!
//! For a **sequence** `s`, the occurrence list holds one entry per
//! supporting customer: `(customer, e)` where `e` is the transaction index
//! at which the greedy **earliest-match** embedding of `s` ends. The
//! exchange argument behind [`crate::contain`] makes this canonical: if any
//! embedding exists, the earliest-end one exists, and its end position is
//! minimal over all embeddings. Support is therefore just the list length,
//! and the lists of a pass are exactly what the next pass's joins need.
//!
//! For a single litemset id the index list may hold *several* entries per
//! customer (every transaction containing the id, ascending) — the join and
//! the `seed_first_per_customer` kernel reduce those to earliest matches.
//!
//! ## The join
//!
//! `occ(p · ⟨x⟩)` = merge-join of `occ(p)` (ascending unique customers)
//! with the index list of `x` (sorted by `(customer, pos)`): a customer
//! supports `p · ⟨x⟩` iff it has an occurrence of `x` at a transaction
//! **strictly after** the earliest end of `p`, and the first such
//! occurrence is the candidate's earliest end. Both sides are scanned once
//! (two-pointer), so a join costs `O(|occ(p)| + |list(x)|)`.
//!
//! ## Join micro-architecture (see DESIGN.md "Kernel micro-architecture")
//!
//! Both sides compare as one packed `u64` key `(customer << 32) | pos`
//! (`key`) — the lexicographic `(customer, pos)` order becomes a single
//! integer compare, and "strictly after the earliest end" is exactly
//! `key(last) > key(prefix)` because a prefix entry's customer matches
//! before its position is compared. The inner advancement runs
//! **branchless**: the comparison flag is monotone over the sorted list, so
//! a 4-entry window advances by the *sum* of four independent flag adds
//! (`setcc`/`cmov` codegen, no data-dependent branch in the steady state) —
//! see `join_linear`. When the index list is more than `GALLOP_RATIO`×
//! longer than the prefix list, `join_gallop` replaces the linear walk
//! with exponential probing plus binary search per prefix entry, skipping
//! runs of irrelevant occurrences in `O(log run)` (counted in
//! [`VerticalState::gallop_skips`]). The dispatch is a pure function of the
//! two list lengths, so results and counters stay deterministic. Either
//! path visits the same frontier entry the two-pointer walk would — the
//! first occurrence with `key > key(p)` — so the earliest-end invariant is
//! untouched.
//!
//! ## Pass-to-pass reuse and the memory cap
//!
//! [`VerticalState`] retains the occurrence lists of the last counted pass
//! (keyed by the pass's sorted [`CandidateArena`]) so pass `k+1` finds each
//! candidate's length-`k` prefix list by binary search — one join per
//! candidate. When the lists outgrow [`VerticalParams::cache_cap_bytes`]
//! (or the prefix is not cached, e.g. after the pass-2 pair fast path or a
//! backward jump), the prefix list is **re-folded from the litemset index
//! lists**: seed with the first id's earliest occurrence per customer, then
//! one join per remaining prefix id. Cached lists are a pure function of
//! the transformed database, so the cache never needs invalidation.
//!
//! ## Parallelism and determinism
//!
//! Counting shards over **prefix runs** (maximal blocks of candidates
//! sharing a length-`k-1` prefix; contiguous because arenas are sorted) via
//! [`map_chunks`], so each run's fold-or-lookup decision and join count are
//! independent of the chunking: supports, join counters, and list bytes are
//! bit-identical across thread counts, matching the workspace-wide
//! guarantee of the horizontal strategies.
//!
//! [`CountingStrategy::Vertical`]: crate::counting::CountingStrategy

use crate::arena::CandidateArena;
use crate::cast::{id32, idx, w64};
use crate::stats::Stopwatch;
use crate::types::transformed::{LitemsetId, TransformedCustomer, TransformedDatabase};
use seqpat_itemset::parallel::map_chunks;
use std::time::Duration;

/// Knobs of the vertical strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerticalParams {
    /// Maximum bytes of per-candidate occurrence lists retained between
    /// passes. `0` disables retention entirely: every pass re-folds its
    /// prefixes from the litemset index lists (more joins, least memory).
    pub cache_cap_bytes: usize,
}

impl Default for VerticalParams {
    fn default() -> Self {
        Self {
            // 64 MiB comfortably holds the lists of every paper-scale
            // dataset; the cap exists for adversarial low-minsup runs.
            cache_cap_bytes: 64 << 20,
        }
    }
}

/// One occurrence: `customer` is the index into
/// `TransformedDatabase::customers`, `pos` the transaction index within
/// that customer where the (last element of the) sequence matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Occurrence {
    /// Customer index (not customer id — lists are internal to one run).
    pub customer: u32,
    /// Transaction index of the earliest match end.
    pub pos: u32,
}

const OCC_BYTES: usize = std::mem::size_of::<Occurrence>();

/// CSR occurrence index over litemset ids: `list(id)` is the flat slice of
/// this id's occurrences, sorted by `(customer, pos)`.
#[derive(Debug)]
pub struct VerticalIndex {
    offsets: Vec<usize>,
    occ: Vec<Occurrence>,
}

impl VerticalIndex {
    /// Builds the index in two scans (count, then cursor fill); the scan
    /// order — customers ascending, transactions ascending — is what makes
    /// every per-id list arrive sorted without a sort pass.
    pub fn build(tdb: &TransformedDatabase) -> Self {
        Self::build_slice(&tdb.customers, tdb.table.len())
    }

    /// Like [`VerticalIndex::build`], but over any contiguous row slice —
    /// a whole database or one shard of it. `customer` fields of the
    /// resulting occurrences index into `customers`, so per-shard indexes
    /// are self-contained (supports are additive across shards).
    pub fn build_slice(customers: &[TransformedCustomer], num_litemsets: usize) -> Self {
        let n = num_litemsets;
        debug_assert!(
            customers
                .iter()
                .flat_map(|c| &c.elements)
                .flatten()
                .all(|&id| idx(id) < n),
            "every transformed litemset id is within the n-entry alphabet"
        );
        let mut offsets = vec![0usize; n + 1];
        for customer in customers {
            for element in &customer.elements {
                for &id in element {
                    offsets[idx(id) + 1] += 1;
                }
            }
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut occ = vec![Occurrence::default(); offsets[n]];
        let mut cursor = offsets.clone();
        for (c, customer) in customers.iter().enumerate() {
            for (t, element) in customer.elements.iter().enumerate() {
                for &id in element {
                    occ[cursor[idx(id)]] = Occurrence {
                        customer: id32(c),
                        pos: id32(t),
                    };
                    cursor[idx(id)] += 1;
                }
            }
        }
        debug_assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "CSR offsets are monotone non-decreasing"
        );
        Self { offsets, occ }
    }

    /// All occurrences of litemset `id`.
    pub fn list(&self, id: LitemsetId) -> &[Occurrence] {
        debug_assert!(
            idx(id) + 1 < self.offsets.len() && self.offsets[idx(id)] <= self.offsets[idx(id) + 1],
            "id within the alphabet; CSR offsets monotone"
        );
        &self.occ[self.offsets[idx(id)]..self.offsets[idx(id) + 1]]
    }

    /// Heap bytes held by the index.
    pub fn bytes(&self) -> u64 {
        w64(self.occ.len() * OCC_BYTES + self.offsets.len() * std::mem::size_of::<usize>())
    }
}

/// CSR store of per-candidate occurrence lists (one list per arena row).
#[derive(Debug, Clone, Default)]
pub struct OccLists {
    offsets: Vec<usize>,
    occ: Vec<Occurrence>,
}

impl OccLists {
    fn new() -> Self {
        Self {
            offsets: vec![0],
            occ: Vec::new(),
        }
    }

    fn push_list(&mut self, list: &[Occurrence]) {
        self.occ.extend_from_slice(list);
        self.offsets.push(self.occ.len());
    }

    /// The `i`-th candidate's occurrence list.
    pub fn list(&self, i: usize) -> &[Occurrence] {
        debug_assert!(
            i + 1 < self.offsets.len() && self.offsets[i] <= self.offsets[i + 1],
            "list index within bounds; CSR offsets monotone"
        );
        &self.occ[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of lists stored.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no lists are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes held.
    pub fn bytes(&self) -> u64 {
        w64(self.occ.len() * OCC_BYTES + self.offsets.len() * std::mem::size_of::<usize>())
    }

    /// Appends another chunk's lists (used to merge `map_chunks` results in
    /// chunk order).
    fn append(&mut self, other: &OccLists) {
        debug_assert!(
            other.offsets.first() == Some(&0),
            "an OccLists CSR always starts at offset 0"
        );
        let base = self.occ.len();
        self.occ.extend_from_slice(&other.occ);
        self.offsets
            .extend(other.offsets[1..].iter().map(|&o| o + base));
    }
}

/// Packed comparison key: `(customer << 32) | pos`. Integer order on keys
/// is lexicographic `(customer, pos)` order, so the two-pointer advancement
/// condition `customer < p.customer || (customer == p.customer && pos <=
/// p.pos)` collapses to the single compare `key <= key(p)`.
#[inline]
fn key(o: Occurrence) -> u64 {
    (u64::from(o.customer) << 32) | u64::from(o.pos)
}

/// Last-list-to-prefix-list length ratio above which [`join`] switches from
/// the linear branchless walk to galloping: past this skew the `O(log run)`
/// probes beat touching every irrelevant occurrence once. A pure function
/// of the two lists, so the dispatch (and every counter) is deterministic.
const GALLOP_RATIO: usize = 8;

/// Per-join-kernel counters, merged into [`VerticalState`] after a pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct JoinCounters {
    /// Merge-joins executed.
    joins: u64,
    /// Occurrence entries skipped over by galloping probes.
    gallop_skips: u64,
}

impl JoinCounters {
    fn add(&mut self, other: JoinCounters) {
        self.joins += other.joins;
        self.gallop_skips += other.gallop_skips;
    }
}

/// Temporal merge-join: `out` gets one `(customer, pos)` entry per customer
/// of `prefix` that has an entry in `last` at a strictly later transaction
/// (the earliest such). `prefix` must hold ascending unique customers;
/// `last` must be sorted by `(customer, pos)` — both invariants hold for
/// every list this module produces. Dispatches on list-length skew between
/// the branchless linear walk and the galloping walk (see the module docs);
/// both return the identical earliest-end list.
fn join(
    prefix: &[Occurrence],
    last: &[Occurrence],
    out: &mut Vec<Occurrence>,
    st: &mut JoinCounters,
) {
    debug_assert!(
        prefix.windows(2).all(|w| w[0].customer < w[1].customer),
        "prefix lists hold ascending unique customers"
    );
    debug_assert!(
        last.windows(2).all(|w| key(w[0]) <= key(w[1])),
        "index lists are sorted by (customer, pos)"
    );
    st.joins += 1;
    if last.len() > GALLOP_RATIO * prefix.len().max(1) {
        join_gallop(prefix, last, out, &mut st.gallop_skips);
    } else {
        join_linear(prefix, last, out);
    }
}

/// The dense-side join: two-pointer walk with **branchless** advancement.
/// `key(·) <= pk` is monotone over the sorted `last` list, so the advance
/// within a 4-entry window is the sum of four independent comparison flags
/// — straight-line flag adds with no data-dependent branch; the only
/// branches are the (predictable) per-window continue/exit tests.
fn join_linear(prefix: &[Occurrence], last: &[Occurrence], out: &mut Vec<Occurrence>) {
    debug_assert!(
        last.windows(2).all(|w| key(w[0]) <= key(w[1])),
        "last is sorted by key: w[0..=3] index the exactly-4-entry window \
         from get(j..j + 4), and last[j] is guarded by j < last.len()"
    );
    let mut j = 0usize;
    for &p in prefix {
        let pk = key(p);
        while let Some(w) = last.get(j..j + 4) {
            let step = usize::from(key(w[0]) <= pk)
                + usize::from(key(w[1]) <= pk)
                + usize::from(key(w[2]) <= pk)
                + usize::from(key(w[3]) <= pk);
            j += step;
            if step < 4 {
                break;
            }
        }
        // Tail: fewer than 4 entries left (or the window already stopped,
        // making this a no-op check).
        while j < last.len() && key(last[j]) <= pk {
            j += 1;
        }
        if j < last.len() && last[j].customer == p.customer {
            out.push(Occurrence {
                customer: p.customer,
                pos: last[j].pos,
            });
        }
    }
}

/// The skewed-side join: per prefix entry, exponential probing followed by
/// binary search finds the first `last` entry with `key > pk` in
/// `O(log run)` instead of touching every entry of the run. Entries jumped
/// over (beyond the one comparison the linear walk would also pay) are
/// counted in `gallop_skips`.
fn join_gallop(
    prefix: &[Occurrence],
    last: &[Occurrence],
    out: &mut Vec<Occurrence>,
    gallop_skips: &mut u64,
) {
    debug_assert!(
        last.windows(2).all(|w| key(w[0]) <= key(w[1])),
        "last is sorted by key: probe index j + step is bounds-checked before \
         every read, hi is clamped by min(len), and lo < mid < hi <= len keeps \
         the binary-search reads in range"
    );
    let mut j = 0usize;
    for &p in prefix {
        let pk = key(p);
        if j < last.len() && key(last[j]) <= pk {
            // Exponential probe: double until last[j + step] > pk (or the
            // list ends). Invariant: key(last[lo]) <= pk for lo = j + step/2.
            let mut step = 1usize;
            while j + step < last.len() && key(last[j + step]) <= pk {
                step <<= 1;
            }
            let mut lo = j + step / 2;
            let mut hi = (j + step).min(last.len());
            // Binary search the boundary in (lo, hi]: smallest index whose
            // key exceeds pk (hi == len counts as past-the-end boundary).
            while lo + 1 < hi {
                let mid = lo + (hi - lo) / 2;
                if key(last[mid]) <= pk {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            *gallop_skips += w64(hi - j - 1);
            j = hi;
        }
        if j < last.len() && last[j].customer == p.customer {
            out.push(Occurrence {
                customer: p.customer,
                pos: last[j].pos,
            });
        }
    }
}

/// Reduces an index list (possibly several occurrences per customer) to the
/// earliest occurrence per customer — `occ(⟨x⟩)` for a single id `x`.
fn seed_first_per_customer(list: &[Occurrence], out: &mut Vec<Occurrence>) {
    let mut last_customer: Option<u32> = None;
    for &o in list {
        if last_customer != Some(o.customer) {
            out.push(o);
            last_customer = Some(o.customer);
        }
    }
}

/// Computes `occ(prefix)` from the litemset index lists alone: seed with
/// the first id, then one join per remaining id (`prefix.len() - 1` joins,
/// added to `st`). `out` receives the result; `tmp` is scratch.
fn fold_prefix(
    index: &VerticalIndex,
    prefix: &[LitemsetId],
    out: &mut Vec<Occurrence>,
    tmp: &mut Vec<Occurrence>,
    st: &mut JoinCounters,
) {
    debug_assert!(
        !prefix.is_empty(),
        "a prefix has at least one id to seed from"
    );
    out.clear();
    seed_first_per_customer(index.list(prefix[0]), out);
    for &id in &prefix[1..] {
        tmp.clear();
        join(out, index.list(id), tmp, st);
        std::mem::swap(out, tmp);
    }
}

/// Per-run (mining-run, not prefix-run) state of the vertical strategy: the
/// litemset index, the previous pass's cached lists, and the counters that
/// feed [`crate::stats::MiningStats`].
#[derive(Debug)]
pub struct VerticalState {
    index: VerticalIndex,
    params: VerticalParams,
    /// Lists of the last counted pass, keyed by that pass's sorted arena.
    cache: Option<(CandidateArena, OccLists)>,
    /// Join scratch reused across [`VerticalState::occurrences_of`] calls.
    fold_tmp: Vec<Occurrence>,
    /// Wall time spent building the index.
    pub index_build_time: Duration,
    /// Merge-joins executed so far (the vertical analogue of an exact
    /// containment test).
    pub joins: u64,
    /// Occurrence entries skipped by galloping joins so far
    /// (thread-invariant: the gallop dispatch and probe path are pure
    /// functions of the joined lists).
    pub gallop_skips: u64,
    /// Peak bytes held across index, cached lists, and a pass's fresh lists.
    pub peak_bytes: u64,
}

impl VerticalState {
    /// Builds the occurrence index for `tdb`.
    pub fn build(tdb: &TransformedDatabase, params: VerticalParams) -> Self {
        Self::build_slice(&tdb.customers, tdb.table.len(), params)
    }

    /// Like [`VerticalState::build`], but over any contiguous row slice —
    /// a whole database or one shard of it.
    pub fn build_slice(
        customers: &[TransformedCustomer],
        num_litemsets: usize,
        params: VerticalParams,
    ) -> Self {
        // seqpat-lint: allow(no-wall-clock-in-kernels) index build is timed once per pass for MiningStats, never in the counting loops
        let watch = Stopwatch::start();
        let index = VerticalIndex::build_slice(customers, num_litemsets);
        // seqpat-lint: allow(no-wall-clock-in-kernels) one elapsed() read per index build, reported through MiningStats
        let index_build_time = watch.elapsed();
        let peak_bytes = index.bytes();
        Self {
            index,
            params,
            cache: None,
            fold_tmp: Vec::new(),
            index_build_time,
            joins: 0,
            gallop_skips: 0,
            peak_bytes,
        }
    }

    /// The underlying litemset index.
    pub fn index(&self) -> &VerticalIndex {
        &self.index
    }

    /// Counts the support of every candidate in `candidates` (sorted,
    /// equal-length rows) by occurrence-list joins, sharding prefix runs
    /// over `threads` workers. Results and join counts are bit-identical
    /// across thread counts.
    pub fn count(&mut self, candidates: &CandidateArena, threads: usize) -> Vec<u64> {
        let n = candidates.num_candidates();
        if n == 0 {
            self.cache = None;
            return Vec::new();
        }
        let len = candidates.candidate_len();
        debug_assert!(
            candidates
                .iter()
                .flatten()
                .all(|&id| idx(id) + 1 < self.index.offsets.len()),
            "every candidate id is within the index alphabet"
        );

        // Maximal blocks of candidates sharing the length-(len-1) prefix;
        // contiguous because the arena is sorted. Each run is scheduled
        // whole, which pins the fold-vs-lookup decision (and hence the join
        // counter) to the run, not to the chunking.
        let runs = candidates.prefix_runs();

        // Lists are only worth keeping when the next pass can binary-search
        // them, which needs this arena sorted — true for every algorithm
        // pass, possibly false for ad-hoc one-shot counts.
        let keep_lists = self.params.cache_cap_bytes > 0 && candidates.is_sorted_unique();
        let cache = self.cache.take();
        let cached = cache
            .as_ref()
            .filter(|(arena, _)| len >= 2 && arena.candidate_len() == len - 1);

        let index = &self.index;
        let partials = map_chunks(&runs, threads, |chunk| {
            let mut supports: Vec<u64> = Vec::new();
            let mut lists = OccLists::new();
            let mut st = JoinCounters::default();
            let mut folded: Vec<Occurrence> = Vec::new();
            let mut fold_tmp: Vec<Occurrence> = Vec::new();
            let mut out: Vec<Occurrence> = Vec::new();
            for &(start, end) in chunk {
                let prefix = &candidates.get(start)[..len - 1];
                let cached_list = if len == 1 {
                    None
                } else {
                    cached.and_then(|(a, l)| a.binary_search(prefix).ok().map(|i| l.list(i)))
                };
                let prefix_list: &[Occurrence] = if len == 1 {
                    &[]
                } else if let Some(list) = cached_list {
                    list
                } else {
                    fold_prefix(index, prefix, &mut folded, &mut fold_tmp, &mut st);
                    &folded
                };
                for i in start..end {
                    let last = candidates.get(i)[len - 1];
                    out.clear();
                    if len == 1 {
                        seed_first_per_customer(index.list(last), &mut out);
                    } else {
                        join(prefix_list, index.list(last), &mut out, &mut st);
                    }
                    supports.push(w64(out.len()));
                    if keep_lists {
                        lists.push_list(&out);
                    }
                }
            }
            (supports, lists, st)
        });

        let mut supports: Vec<u64> = Vec::with_capacity(n);
        let mut new_lists = OccLists::new();
        let mut totals = JoinCounters::default();
        for (s, l, st) in partials {
            supports.extend(s);
            if keep_lists {
                new_lists.append(&l);
            }
            totals.add(st);
        }
        self.joins += totals.joins;
        self.gallop_skips += totals.gallop_skips;

        let fresh_bytes = if keep_lists {
            candidates.bytes() + new_lists.bytes()
        } else {
            0
        };
        let held = self.index.bytes()
            + cache.as_ref().map_or(0, |(a, l)| a.bytes() + l.bytes())
            + fresh_bytes;
        self.peak_bytes = self.peak_bytes.max(held);

        // The memory cap: retain the pass's lists only when they fit,
        // otherwise the next pass falls back to folding from the index.
        self.cache = if keep_lists && fresh_bytes <= w64(self.params.cache_cap_bytes) {
            Some((candidates.clone(), new_lists))
        } else {
            None
        };
        supports
    }

    /// The occurrence list of one sequence, written into `out` (cleared
    /// first): a cache lookup when the last counted pass covered it, else a
    /// fold from the index lists (counted in [`VerticalState::joins`]). The
    /// out-parameter lets DynamicSome's on-the-fly pass reuse one buffer
    /// across its whole `Lk` loop instead of allocating per sequence.
    pub fn occurrences_of(&mut self, ids: &[LitemsetId], out: &mut Vec<Occurrence>) {
        out.clear();
        if ids.is_empty() {
            return;
        }
        if let Some((arena, lists)) = &self.cache {
            if arena.candidate_len() == ids.len() {
                if let Ok(i) = arena.binary_search(ids) {
                    out.extend_from_slice(lists.list(i));
                    return;
                }
            }
        }
        let mut st = JoinCounters::default();
        fold_prefix(&self.index, ids, out, &mut self.fold_tmp, &mut st);
        self.joins += st.joins;
        self.gallop_skips += st.gallop_skips;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contain::customer_contains_from;
    use crate::types::itemset::Itemset;
    use crate::types::transformed::{LitemsetTable, TransformedCustomer};

    fn tdb(customers: Vec<Vec<Vec<LitemsetId>>>, num_ids: u32) -> TransformedDatabase {
        let table = LitemsetTable::new(
            (0..num_ids)
                .map(|i| (Itemset::new(vec![i + 1]), 1))
                .collect::<Vec<_>>(),
        );
        let total = customers.len();
        TransformedDatabase {
            customers: customers
                .into_iter()
                .enumerate()
                .map(|(i, elements)| TransformedCustomer {
                    customer_id: i as u64 + 1,
                    elements,
                })
                .collect(),
            table,
            total_customers: total,
        }
    }

    fn occ(customer: u32, pos: u32) -> Occurrence {
        Occurrence { customer, pos }
    }

    #[test]
    fn index_lists_are_customer_partitioned_and_sorted() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1, 2], vec![0]],
                vec![],
                vec![vec![2], vec![0, 2]],
            ],
            3,
        );
        let index = VerticalIndex::build(&db);
        assert_eq!(index.list(0), &[occ(0, 0), occ(0, 2), occ(2, 1)]);
        assert_eq!(index.list(1), &[occ(0, 1)]);
        assert_eq!(index.list(2), &[occ(0, 1), occ(2, 0), occ(2, 1)]);
        assert!(index.bytes() > 0);
    }

    #[test]
    fn join_requires_strictly_later_transactions() {
        let prefix = [occ(0, 1), occ(2, 0), occ(5, 3)];
        let last = [occ(0, 0), occ(0, 1), occ(0, 4), occ(2, 0), occ(4, 0)];
        let mut out = Vec::new();
        let mut st = JoinCounters::default();
        join(&prefix, &last, &mut out, &mut st);
        // Customer 0: earliest entry after pos 1 is pos 4. Customer 2: only
        // entry is at pos 0, not strictly later. Customer 5: absent.
        assert_eq!(out, vec![occ(0, 4)]);
        assert_eq!(st.joins, 1);
    }

    #[test]
    fn packed_key_orders_by_customer_then_pos() {
        assert!(key(occ(0, u32::MAX)) < key(occ(1, 0)));
        assert!(key(occ(3, 5)) < key(occ(3, 6)));
        assert_eq!(key(occ(2, 7)), (2u64 << 32) | 7);
    }

    #[test]
    fn linear_and_galloping_joins_agree_on_skewed_lists() {
        // Pathological skew: 3 prefix entries against a 600-entry index
        // list (ratio 200 ≫ GALLOP_RATIO forces the gallop path in join),
        // with long runs of a hot customer between the matches.
        let prefix = [occ(5, 2), occ(7, 90), occ(900, 0)];
        let mut last = Vec::new();
        for pos in 0..250 {
            last.push(occ(5, pos)); // hot customer, run crossing pos 2
        }
        for pos in 0..100 {
            last.push(occ(6, pos)); // run the gallop must leap entirely
        }
        for pos in 0..249 {
            last.push(occ(7, pos)); // hot customer, run crossing pos 90
        }
        last.push(occ(901, 3)); // customer 900 absent
        let mut linear = Vec::new();
        join_linear(&prefix, &last, &mut linear);
        let mut galloped = Vec::new();
        let mut skips = 0u64;
        join_gallop(&prefix, &last, &mut galloped, &mut skips);
        assert_eq!(galloped, linear);
        assert_eq!(linear, vec![occ(5, 3), occ(7, 91)]);
        assert!(skips > 0, "skew this extreme must take galloping shortcuts");

        // The public entry point dispatches to the gallop path here.
        let mut via_join = Vec::new();
        let mut st = JoinCounters::default();
        join(&prefix, &last, &mut via_join, &mut st);
        assert_eq!(via_join, linear);
        assert_eq!(st.gallop_skips, skips);
    }

    #[test]
    fn gallop_handles_boundary_runs() {
        // Match at the very last entry, prefix entry past every customer,
        // and a probe that overshoots the list end mid-doubling.
        let prefix = [occ(1, 0), occ(2, 0), occ(9, 9)];
        let mut last: Vec<Occurrence> = (1..64).map(|p| occ(0, p)).collect();
        last.push(occ(1, 5));
        last.push(occ(2, 1));
        let mut linear = Vec::new();
        join_linear(&prefix, &last, &mut linear);
        let mut galloped = Vec::new();
        let mut skips = 0u64;
        join_gallop(&prefix, &last, &mut galloped, &mut skips);
        assert_eq!(galloped, linear);
        assert_eq!(linear, vec![occ(1, 5), occ(2, 1)]);
    }

    #[test]
    fn seed_takes_first_occurrence_per_customer() {
        let list = [occ(0, 2), occ(0, 5), occ(3, 0), occ(3, 1), occ(4, 7)];
        let mut out = Vec::new();
        seed_first_per_customer(&list, &mut out);
        assert_eq!(out, vec![occ(0, 2), occ(3, 0), occ(4, 7)]);
    }

    /// Brute-force oracle: count + earliest ends via the containment kernel.
    fn oracle(db: &TransformedDatabase, cand: &[LitemsetId]) -> Vec<Occurrence> {
        db.customers
            .iter()
            .enumerate()
            .filter_map(|(c, customer)| {
                customer_contains_from(customer, cand, 0).map(|end| occ(c as u32, end as u32))
            })
            .collect()
    }

    #[test]
    fn counting_matches_containment_oracle_with_and_without_cache() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![0, 1], vec![2]],
                vec![vec![1, 2], vec![0], vec![0]],
                vec![vec![2], vec![2], vec![1]],
                vec![vec![0, 1, 2]],
                vec![],
            ],
            3,
        );
        // All 27 ordered triples over {0,1,2}; sorted by construction.
        let mut triples = CandidateArena::new(3);
        for a in 0..3u32 {
            for b in 0..3u32 {
                for c in 0..3u32 {
                    triples.push(&[a, b, c]);
                }
            }
        }
        for cap in [0usize, usize::MAX] {
            let mut state = VerticalState::build(
                &db,
                VerticalParams {
                    cache_cap_bytes: cap,
                },
            );
            for threads in [1usize, 2, 4] {
                let supports = state.count(&triples, threads);
                for (i, cand) in triples.iter().enumerate() {
                    let expected = oracle(&db, cand);
                    assert_eq!(
                        supports[i],
                        expected.len() as u64,
                        "cap {cap}, threads {threads}, candidate {cand:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cached_prefix_lists_cut_joins() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![2], vec![0]],
                vec![vec![0], vec![1], vec![2]],
                vec![vec![1], vec![0], vec![2]],
            ],
            3,
        );
        let pairs = CandidateArena::from_rows(2, [&[0u32, 1][..], &[0, 2], &[1, 2]]);
        let triples = CandidateArena::from_rows(3, [&[0u32, 1, 2][..]]);

        // With caching: pass 2 folds (prefix length 1 → 0 fold joins,
        // 3 candidate joins); pass 3 finds its prefix ⟨0 1⟩ cached → one
        // more join.
        let mut warm = VerticalState::build(&db, VerticalParams::default());
        let s2 = warm.count(&pairs, 1);
        assert_eq!(warm.joins, 3);
        let s3 = warm.count(&triples, 1);
        assert_eq!(warm.joins, 4);

        // cap = 0: pass 3 must re-fold its prefix (1 join) before the
        // candidate join — same supports, more joins.
        let mut cold = VerticalState::build(&db, VerticalParams { cache_cap_bytes: 0 });
        assert_eq!(cold.count(&pairs, 1), s2);
        assert_eq!(cold.count(&triples, 1), s3);
        assert_eq!(cold.joins, 5);
        assert_eq!(s3, vec![2]); // customers 0 and 1 contain ⟨0 1 2⟩
    }

    #[test]
    fn occurrences_of_matches_earliest_match_ends() {
        let db = tdb(
            vec![
                vec![vec![0], vec![0, 1], vec![1]],
                vec![vec![1], vec![0]],
                vec![vec![0], vec![1]],
            ],
            2,
        );
        let mut state = VerticalState::build(&db, VerticalParams::default());
        let mut out = vec![occ(9, 9)]; // stale content must be cleared
        state.occurrences_of(&[0, 1], &mut out);
        assert_eq!(out, vec![occ(0, 1), occ(2, 1)]);
        state.occurrences_of(&[1, 0], &mut out);
        assert_eq!(out, vec![occ(1, 1)]);
        state.occurrences_of(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn length_one_candidates_count_distinct_customers() {
        let db = tdb(
            vec![vec![vec![0], vec![0]], vec![vec![0]], vec![vec![1]]],
            2,
        );
        let mut state = VerticalState::build(&db, VerticalParams::default());
        let singles = CandidateArena::from_rows(1, [&[0u32][..], &[1]]);
        assert_eq!(state.count(&singles, 1), vec![2, 1]);
        assert_eq!(state.joins, 0);
    }

    #[test]
    fn peak_bytes_and_join_counts_are_thread_invariant() {
        let db = tdb(
            vec![
                vec![vec![0], vec![1], vec![0], vec![1]],
                vec![vec![1], vec![0], vec![1]],
                vec![vec![0], vec![0], vec![1]],
                vec![vec![1], vec![1]],
            ],
            2,
        );
        let mut pairs = CandidateArena::new(2);
        for a in 0..2u32 {
            for b in 0..2u32 {
                pairs.push(&[a, b]);
            }
        }
        let run = |threads: usize| {
            let mut state = VerticalState::build(&db, VerticalParams::default());
            let supports = state.count(&pairs, threads);
            (supports, state.joins, state.gallop_skips, state.peak_bytes)
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "{threads} threads");
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// Sorted duplicate-free occurrence lists in packed-key order —
        /// exactly the invariant the index lists and join outputs hold.
        fn arb_list(
            customers: u32,
            size: core::ops::Range<usize>,
        ) -> impl Strategy<Value = Vec<Occurrence>> {
            proptest::collection::btree_set((0..customers, 0u32..300), size).prop_map(|set| {
                set.into_iter()
                    .map(|(customer, pos)| Occurrence { customer, pos })
                    .collect()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The branchless linear join and the galloping join are
            /// interchangeable on any (prefix, last) pair, including the
            /// skewed shapes the dispatcher sends to the gallop path.
            #[test]
            fn linear_and_galloping_joins_agree(
                prefix in arb_list(8, 1..4),
                last in arb_list(8, 64..256),
            ) {
                // Prefix lists hold at most one (earliest) occurrence per
                // customer — the invariant `join` debug-asserts.
                let mut prefix = prefix;
                prefix.dedup_by_key(|o| o.customer);
                let mut linear = Vec::new();
                join_linear(&prefix, &last, &mut linear);
                let mut galloped = Vec::new();
                let mut skips = 0u64;
                join_gallop(&prefix, &last, &mut galloped, &mut skips);
                prop_assert_eq!(&galloped, &linear);

                // This size ratio always exceeds GALLOP_RATIO, so the
                // public dispatcher must agree with (and route to) the
                // galloping path.
                prop_assert!(last.len() > GALLOP_RATIO * prefix.len());
                let mut via_join = Vec::new();
                let mut st = JoinCounters::default();
                join(&prefix, &last, &mut via_join, &mut st);
                prop_assert_eq!(&via_join, &linear);
                prop_assert_eq!(st.gallop_skips, skips);
            }
        }
    }
}
