//! Transformation phase (paper §3, phase 3).
//!
//! Each transaction is replaced by the set of litemset ids contained in it.
//! Transactions containing no large itemset disappear; customers whose
//! entire history disappears remain in the database with an empty element
//! list because they still count in the support denominator. The paper
//! motivates this phase with the cost of repeated subset tests during
//! support counting — after transformation, testing whether a customer
//! supports a candidate is pure integer work.

use crate::fxhash::FxHashMap;
use crate::types::database::{CustomerSequence, Database};
use crate::types::itemset::Item;
use crate::types::transformed::{
    LitemsetId, LitemsetTable, TransformedCustomer, TransformedDatabase,
};

/// Reusable per-customer transformer: the litemset table plus its
/// first-item anchor index.
///
/// [`transform_phase`] builds one and maps every customer through it;
/// streaming converters (seqpat-io's colstore builder) build one and feed
/// customers through it one batch at a time, producing rows identical to
/// the in-memory phase.
pub struct TransformContext<'a> {
    table: &'a LitemsetTable,
    // Index litemsets by their smallest item: a litemset can only be
    // contained in a transaction that holds its first item, so each
    // transaction tests only the litemsets anchored at one of its items
    // instead of the whole table (the table is often in the thousands, a
    // transaction has a handful of items).
    by_first_item: FxHashMap<Item, Vec<LitemsetId>>,
}

impl<'a> TransformContext<'a> {
    /// Builds the anchor index over `table`.
    pub fn new(table: &'a LitemsetTable) -> Self {
        let mut by_first_item: FxHashMap<Item, Vec<LitemsetId>> = FxHashMap::default();
        for (id, set, _) in table.iter() {
            by_first_item.entry(set.items()[0]).or_default().push(id);
        }
        Self {
            table,
            by_first_item,
        }
    }

    /// Transforms one customer sequence: per transaction, the sorted set of
    /// litemset ids contained in it (empty transactions dropped, empty
    /// customers kept — they still count in the support denominator).
    pub fn transform_customer(&self, customer: &CustomerSequence) -> TransformedCustomer {
        let mut elements: Vec<Vec<LitemsetId>> = Vec::with_capacity(customer.transactions.len());
        for transaction in &customer.transactions {
            let mut ids: Vec<LitemsetId> = Vec::new();
            for &item in transaction.items.items() {
                if let Some(anchored) = self.by_first_item.get(&item) {
                    for &id in anchored {
                        if self.table.itemset(id).is_subset_of(&transaction.items) {
                            ids.push(id);
                        }
                    }
                }
            }
            if !ids.is_empty() {
                ids.sort_unstable();
                debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
                elements.push(ids);
            }
        }
        TransformedCustomer {
            customer_id: customer.customer_id,
            elements,
        }
    }
}

/// Runs the transformation phase.
pub fn transform_phase(db: &Database, table: LitemsetTable) -> TransformedDatabase {
    let customers = {
        let ctx = TransformContext::new(&table);
        db.customers()
            .iter()
            .map(|c| ctx.transform_customer(c))
            .collect()
    };
    TransformedDatabase {
        customers,
        table,
        total_customers: db.num_customers(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::litemset::{litemset_phase, tests::paper_db};
    use seqpat_itemset::AprioriConfig;

    fn transformed() -> TransformedDatabase {
        let db = paper_db();
        let out = litemset_phase(&db, 2, &AprioriConfig::default());
        transform_phase(&db, out.table)
    }

    #[test]
    fn paper_figure5_transformation() {
        // Ids (lexicographic): 0=(30) 1=(40) 2=(40 70) 3=(70) 4=(90).
        // Paper Figure 5: customer 2's transformed sequence is
        // ⟨{(30)} {(40),(70),(40 70)}⟩ — (10 20) disappears.
        let t = transformed();
        let c2 = &t.customers[1];
        assert_eq!(c2.elements, vec![vec![0], vec![1, 2, 3]]);
    }

    #[test]
    fn customer_with_only_small_items_keeps_denominator_slot() {
        let db = Database::from_rows(vec![
            (1, 1, vec![1]),
            (1, 2, vec![1]),
            (2, 1, vec![99]), // unique item, never large at min_count 2
            (3, 1, vec![1]),
        ]);
        let out = litemset_phase(&db, 2, &AprioriConfig::default());
        let t = transform_phase(&db, out.table);
        assert_eq!(t.total_customers, 3);
        assert_eq!(t.customers.len(), 3);
        assert!(t.customers[1].elements.is_empty());
    }

    #[test]
    fn all_five_customers_transformed() {
        let t = transformed();
        assert_eq!(t.customers.len(), 5);
        assert_eq!(t.total_customers, 5);
        // Customer 1: ⟨(30)(90)⟩ → ⟨{0}{4}⟩.
        assert_eq!(t.customers[0].elements, vec![vec![0], vec![4]]);
        // Customer 3: single transaction (30 50 70) → {0, 3}.
        assert_eq!(t.customers[2].elements, vec![vec![0, 3]]);
        // Customer 5: ⟨(90)⟩ → ⟨{4}⟩.
        assert_eq!(t.customers[4].elements, vec![vec![4]]);
    }

    #[test]
    fn to_sequence_maps_ids_back() {
        let t = transformed();
        let seq = t.to_sequence(&[0, 2]);
        assert_eq!(seq.to_string(), "<(30)(40 70)>");
    }
}
