//! **E9 — thread scaling** of the parallel counting layer.
//!
//! Sweeps 1 / 2 / 4 / 8 worker threads over `C10-T5-S4-I2.5` at minsup 1%
//! (the paper's densest standard dataset) and reports wall time, speedup
//! over the single-thread run, and the invariants the tentpole guarantees:
//! every cell finds the same patterns and performs the same number of
//! containment tests.
//!
//! Output: a table on stdout plus `results/e9_threads.json` — a
//! results-table JSON object with one entry per thread count. Speedups are
//! only meaningful on a multi-core host; the JSON records
//! `available_parallelism` so a 1-core run is recognizable as such.

use seqpat_bench::harness::measure_config;
use seqpat_bench::table::fmt_secs;
use seqpat_bench::{Args, Table};
use seqpat_core::{MinSupport, MinerConfig, Parallelism};
use seqpat_datagen::{generate, GenParams};

fn main() {
    let args = Args::parse();
    let minsup = 0.01;
    let dataset = "C10-T5-S4-I2.5";
    let params = GenParams::paper_dataset(dataset)
        .expect("paper dataset")
        .customers(args.customers);
    let db = generate(&params, args.seed);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "E9: thread scaling on {dataset} (|D| = {}, minsup {:.0}%, {cores} core(s) available)\n",
        args.customers,
        minsup * 100.0
    );
    let thread_counts: &[usize] = if args.quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut table = Table::new(&[
        "threads",
        "time s",
        "speedup",
        "containment tests",
        "patterns",
    ]);
    let mut entries = Vec::new();
    let mut baseline: Option<(f64, u64, usize)> = None;

    for &threads in thread_counts {
        let config = MinerConfig::new(MinSupport::Fraction(minsup))
            .parallelism(Parallelism::threads(threads));
        let m = measure_config(&db, dataset, minsup, config);
        let (base_secs, base_tests, base_patterns) =
            *baseline.get_or_insert((m.seconds, m.containment_tests, m.patterns));
        // The tentpole invariant: thread count changes nothing but time.
        assert_eq!(
            m.patterns, base_patterns,
            "answer changed with {threads} threads"
        );
        assert_eq!(
            m.containment_tests, base_tests,
            "containment tests changed with {threads} threads"
        );
        let speedup = base_secs / m.seconds.max(1e-12);
        table.row(vec![
            threads.to_string(),
            fmt_secs(m.seconds),
            format!("{speedup:.2}x"),
            m.containment_tests.to_string(),
            m.patterns.to_string(),
        ]);
        entries.push(format!(
            "    {{\"threads\": {threads}, \"seconds\": {:.6}, \"speedup\": {speedup:.4}, \
             \"containment_tests\": {}, \"patterns\": {}}}",
            m.seconds, m.containment_tests, m.patterns
        ));
    }
    table.print();

    let json = format!(
        "{{\n  \"experiment\": \"e9_threads\",\n  \"dataset\": \"{dataset}\",\n  \
         \"customers\": {},\n  \"minsup\": {minsup},\n  \"seed\": {},\n  \
         \"available_parallelism\": {cores},\n  \"results\": [\n{}\n  ]\n}}\n",
        args.customers,
        args.seed,
        entries.join(",\n")
    );
    std::fs::create_dir_all(&args.out_dir).expect("create results dir");
    let path = std::path::Path::new(&args.out_dir).join("e9_threads.json");
    std::fs::write(&path, json).expect("write JSON");
    println!("\nwrote {}", path.display());
    if cores == 1 {
        println!("note: single-core host — speedups ≈ 1.0 by construction");
    }
}
