//! # seqpat-criterion-compat — offline stand-in for the `criterion` crate
//!
//! The build environment has no crates.io access, so the slice of the
//! `criterion 0.5` API used by `crates/bench/benches/*` is reimplemented
//! here and wired in under the dependency name `criterion`. Covered:
//! [`Criterion`], [`black_box`], [`BenchmarkId`], benchmark groups with
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are intentionally minimal: each benchmark runs a short
//! warm-up then `sample_size` timed iterations and reports min/mean/max.
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets) every body runs exactly once, untimed, so the tier-1
//! gate stays fast. Rigorous measurements in this workspace come from the
//! `seqpat-bench` harness binaries, not from these micro-benchmarks.

use std::fmt::Display;
// seqpat-lint: allow(no-wall-clock-outside-stats) this shim IS the timing harness; measuring wall clock is its entire purpose
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Entry point handed to each benchmark group function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, DEFAULT_SAMPLE_SIZE, self.test_mode, f);
        self
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.criterion.test_mode, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.criterion.test_mode, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to each benchmark body; `iter` is the timed hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // One warm-up pass, then timed samples of a single call each.
        black_box(routine());
        for _ in 0..self.sample_size {
            // seqpat-lint: allow(no-wall-clock-outside-stats) the bench loop's sample timer is the harness's reason to exist
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, test_mode: bool, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        test_mode,
    };
    f(&mut bencher);
    if test_mode {
        println!("test-mode {label}: ok");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean: Duration = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{label}: mean {mean:?} (min {min:?}, max {max:?}, n={})",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into one group runner, mirroring
/// criterion's simple (non-config) form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generates `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat_smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn group_api_runs_bodies() {
        let mut c = Criterion { test_mode: true };
        tiny_bench(&mut c);
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("algorithm", "apriori").to_string(),
            "algorithm/apriori"
        );
        assert_eq!(BenchmarkId::from_parameter(0.25).to_string(), "0.25");
    }
}
