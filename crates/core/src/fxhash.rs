//! A small, fast, non-cryptographic hasher for hot internal maps.
//!
//! The default SipHash behind `std::collections::HashMap` is measurably slow
//! for the short integer keys that dominate this workload (litemset ids,
//! item ids). This is the well-known Fx multiply-rotate hash (as used by the
//! Rust compiler), reimplemented here so the crate stays dependency-free.
//! Do **not** expose these maps to untrusted keys — there is no HashDoS
//! protection; all uses in this workspace hash internally generated ids.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Multiply-rotate hasher; one multiplication per word of input.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&2), Some(&"b"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let mut seen = FxHashSet::default();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // Perfectly injective on this range.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_and_tail_handling() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(h1.finish(), h2.finish());
    }
}
