//! Seeded panic behind a method-call hop: the kernel reaches
//! `Hopper::finish`'s unwrap only through the free fn `via` (re-exported
//! by the prelude), whose body makes a method call — so the chain needs
//! both the `pub use` resolution and the method-call resolution to hold.

pub struct Hopper {
    inner: Option<u64>,
}

impl Hopper {
    pub fn wrap(v: u64) -> Self {
        Hopper { inner: Some(v) }
    }

    pub fn finish(&self) -> u64 {
        self.inner.unwrap()
    }
}

pub fn via(v: u64) -> u64 {
    let h = Hopper::wrap(v);
    h.finish()
}
