//! Raw transaction-row format — the input shape of the paper's sort phase.
//!
//! One transaction per line: `customer_id,transaction_time,item item item`.
//! A header line `customer,time,items` is written and tolerated on read.
//! Unlike SPMF, this format preserves customer ids and transaction times,
//! and rows may appear in any order (the sort phase handles ordering) — so
//! it round-trips the paper's data model exactly.

use std::io::{BufRead, Write};

use crate::error::IoError;
use seqpat_core::{Database, Item};

/// Reads transaction rows and runs the sort phase.
pub fn read(reader: impl BufRead) -> Result<Database, IoError> {
    let mut rows: Vec<(u64, i64, Vec<Item>)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if lineno == 0 && trimmed.eq_ignore_ascii_case("customer,time,items") {
            continue;
        }
        let mut parts = trimmed.splitn(3, ',');
        let customer = parse_field(parts.next(), lineno, "customer id")?;
        let time = parse_field(parts.next(), lineno, "transaction time")?;
        let items_field = parts
            .next()
            .ok_or_else(|| IoError::parse(lineno + 1, "missing items field"))?;
        let mut items: Vec<Item> = Vec::new();
        for token in items_field.split_ascii_whitespace() {
            items.push(token.parse().map_err(|_| {
                IoError::parse(lineno + 1, format!("invalid item token {token:?}"))
            })?);
        }
        if items.is_empty() {
            return Err(IoError::parse(lineno + 1, "transaction with no items"));
        }
        rows.push((customer, time, items));
    }
    Ok(Database::from_rows(rows))
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, IoError> {
    field
        .ok_or_else(|| IoError::parse(lineno + 1, format!("missing {what}")))?
        .trim()
        .parse()
        .map_err(|_| IoError::parse(lineno + 1, format!("invalid {what}")))
}

/// Parses a database from a CSV string.
pub fn read_str(content: &str) -> Result<Database, IoError> {
    read(content.as_bytes())
}

/// Reads a database from a CSV file.
pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<Database, IoError> {
    let file = std::fs::File::open(path)?;
    read(std::io::BufReader::new(file))
}

/// Writes the database as transaction rows (header included).
pub fn write(db: &Database, mut writer: impl Write) -> Result<(), IoError> {
    writeln!(writer, "customer,time,items")?;
    for customer in db.customers() {
        for transaction in &customer.transactions {
            let items: Vec<String> = transaction
                .items
                .items()
                .iter()
                .map(|i| i.to_string())
                .collect();
            writeln!(
                writer,
                "{},{},{}",
                customer.customer_id,
                transaction.time,
                items.join(" ")
            )?;
        }
    }
    Ok(())
}

/// Serializes a database to a CSV string.
pub fn write_string(db: &Database) -> String {
    let mut buf = Vec::new();
    write(db, &mut buf).expect("writing to memory cannot fail");
    String::from_utf8(buf).expect("CSV output is ASCII")
}

/// Writes a database to a CSV file.
pub fn write_file(db: &Database, path: impl AsRef<std::path::Path>) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write(db, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let db = Database::from_rows(vec![
            (7, 10, vec![1, 2]),
            (7, 20, vec![3]),
            (9, -5, vec![4]),
        ]);
        let text = write_string(&db);
        let again = read_str(&text).unwrap();
        assert_eq!(db, again);
    }

    #[test]
    fn rows_in_any_order_are_sorted() {
        let text = "customer,time,items\n2,1,9\n1,2,5\n1,1,4\n";
        let db = read_str(text).unwrap();
        assert_eq!(db.customers()[0].customer_id, 1);
        assert_eq!(db.customers()[0].transactions[0].items.items(), &[4]);
    }

    #[test]
    fn header_and_comments_skipped() {
        let db = read_str("customer,time,items\n# note\n1,1,2 3\n").unwrap();
        assert_eq!(db.num_customers(), 1);
    }

    #[test]
    fn missing_items_field_rejected() {
        assert!(read_str("1,1\n").is_err());
    }

    #[test]
    fn invalid_number_rejected_with_line() {
        let err = read_str("1,1,2\nx,1,2\n").unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_items_rejected() {
        assert!(read_str("1,1, \n").is_err());
    }
}
