//! The query hot path: prefix descent and zero-allocation top-k.
//!
//! [`PatternTrie::predict_into`] is the serving loop's inner function. It
//! walks the trie from the root along the query prefix — one child probe
//! per element — and then copies the first k entries of the landing node's
//! pre-sorted rank permutation into a caller-owned slice. Nothing on this
//! path allocates: the only state is the node cursor, and the output is
//! written in place.
//!
//! The child probe mirrors `contain.rs`: a node's child ids are stored in
//! ascending order, so small fan-outs take an early-exit linear scan
//! (better branch behaviour than binary search on short runs) and large
//! fan-outs binary-search. The crossover is `LINEAR_SCAN_MAX` (8 slots).
//!
//! All slice indexing below relies on the structural invariants that
//! `PatternTrie::build` establishes and `format::load` re-validates before
//! an index is ever queried: CSR offsets are monotone and bounded by the
//! child arrays, child node indices are in range, and `rank_order` is a
//! per-range permutation. Each fn states the invariant it leans on with a
//! `debug_assert!`, checked by the debug-assertions CI job.

use seqpat_core::cast::idx;
use seqpat_core::LitemsetId;

use crate::trie::PatternTrie;

/// Fan-outs up to this take the early-exit linear scan; larger ranges
/// binary-search. Same crossover as `contain.rs`'s element probe.
pub(crate) const LINEAR_SCAN_MAX: usize = 8;

/// One ranked answer: a next litemset id and the best support of any
/// pattern that continues the query prefix with it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Prediction {
    /// The predicted next litemset.
    pub id: LitemsetId,
    /// Maximum support among patterns extending the prefix with `id`.
    pub support: u64,
}

impl PatternTrie {
    /// Child slot of `node` labelled `id`, or `None` when the edge does
    /// not exist. Hybrid probe over the node's ascending id range.
    #[inline]
    fn child_slot(&self, node: u32, id: LitemsetId) -> Option<usize> {
        let n = idx(node);
        debug_assert!(
            n + 1 < self.child_offsets.len()
                && idx(self.child_offsets[n + 1]) <= self.child_ids.len(),
            "node indices and CSR offsets are validated at build/load time"
        );
        let lo = idx(self.child_offsets[n]);
        let hi = idx(self.child_offsets[n + 1]);
        let ids = &self.child_ids[lo..hi];
        if ids.len() <= LINEAR_SCAN_MAX {
            for (i, &c) in ids.iter().enumerate() {
                if c >= id {
                    if c == id {
                        return Some(lo + i);
                    }
                    return None;
                }
            }
            None
        } else {
            match ids.binary_search(&id) {
                Ok(i) => Some(lo + i),
                Err(_) => None,
            }
        }
    }

    /// Descends from the root along `prefix`, returning the landing node,
    /// or `None` when no stored pattern starts with the prefix. The empty
    /// prefix resolves to the root.
    #[inline]
    pub fn lookup(&self, prefix: &[LitemsetId]) -> Option<u32> {
        debug_assert!(
            !self.child_offsets.is_empty(),
            "build/load always materialize at least the root node"
        );
        let mut node = 0u32;
        for &id in prefix {
            let slot = self.child_slot(node, id)?;
            node = self.child_nodes[slot];
        }
        Some(node)
    }

    /// Writes the top-`out.len()` next litemsets for `prefix` into `out`
    /// and returns how many were written (0 when the prefix misses, fewer
    /// than `out.len()` when the fan-out is smaller). Ranking is (best
    /// subtree support descending, id ascending). **Allocation-free**: the
    /// caller owns `out` and reuses it across calls.
    #[inline]
    pub fn predict_into(&self, prefix: &[LitemsetId], out: &mut [Prediction]) -> usize {
        let Some(node) = self.lookup(prefix) else {
            return 0;
        };
        let n = idx(node);
        debug_assert!(
            n + 1 < self.child_offsets.len()
                && idx(self.child_offsets[n + 1]) <= self.rank_order.len()
                && self.rank_order.len() == self.child_ids.len()
                && self.child_nodes.len() == self.child_ids.len(),
            "rank_order is a per-range permutation over validated CSR ranges"
        );
        let lo = idx(self.child_offsets[n]);
        let hi = idx(self.child_offsets[n + 1]);
        let k = out.len().min(hi - lo);
        for (dst, &slot) in out.iter_mut().zip(&self.rank_order[lo..hi]) {
            let s = idx(slot);
            *dst = Prediction {
                id: self.child_ids[s],
                support: self.best_support[idx(self.child_nodes[s])],
            };
        }
        k
    }

    /// Allocating convenience wrapper over [`PatternTrie::predict_into`]
    /// for one-off callers (CLI, tests). The serving loop uses
    /// `predict_into` with reused scratch.
    pub fn predict(&self, prefix: &[LitemsetId], k: usize) -> Vec<Prediction> {
        let mut out = vec![Prediction::default(); k];
        let n = self.predict_into(prefix, &mut out);
        out.truncate(n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpat_core::{Itemset, LargeIdSequence, LitemsetTable};

    fn trie(raw: &[(&[u32], u64)]) -> PatternTrie {
        let max_id = raw
            .iter()
            .flat_map(|(ids, _)| ids.iter().copied())
            .max()
            .map_or(0, |m| m + 1);
        let table = LitemsetTable::new(
            (0..max_id)
                .map(|i| (Itemset::new(vec![i + 1]), 5))
                .collect(),
        );
        let patterns: Vec<LargeIdSequence> = raw
            .iter()
            .map(|&(ids, support)| LargeIdSequence {
                ids: ids.to_vec(),
                support,
            })
            .collect();
        PatternTrie::build(&patterns, table, 100).unwrap()
    }

    #[test]
    fn ranking_is_support_desc_then_id_asc() {
        let t = trie(&[(&[0, 1], 3), (&[0, 2], 7), (&[0, 3], 3), (&[0], 9)]);
        let got = t.predict(&[0], 10);
        assert_eq!(
            got,
            vec![
                Prediction { id: 2, support: 7 },
                Prediction { id: 1, support: 3 },
                Prediction { id: 3, support: 3 },
            ]
        );
    }

    #[test]
    fn empty_prefix_ranks_first_elements() {
        let t = trie(&[(&[0, 1], 3), (&[2], 8), (&[1, 0], 5)]);
        let got = t.predict(&[], 2);
        assert_eq!(
            got,
            vec![
                Prediction { id: 2, support: 8 },
                Prediction { id: 1, support: 5 },
            ]
        );
    }

    #[test]
    fn misses_and_exhausted_prefixes_return_zero() {
        let t = trie(&[(&[0, 1], 3)]);
        let mut out = [Prediction::default(); 4];
        assert_eq!(t.predict_into(&[2], &mut out), 0); // no such edge
        assert_eq!(t.predict_into(&[0, 1], &mut out), 0); // leaf: no next
        assert_eq!(t.predict_into(&[0, 1, 1], &mut out), 0); // past a leaf
        assert_eq!(t.predict_into(&[1], &mut out), 0); // wrong first element
    }

    #[test]
    fn k_truncates_and_wide_k_returns_fanout() {
        let t = trie(&[(&[0, 1], 1), (&[0, 2], 2), (&[0, 3], 3)]);
        assert_eq!(t.predict(&[0], 2).len(), 2);
        assert_eq!(t.predict(&[0], 64).len(), 3);
        let mut out: [Prediction; 0] = [];
        assert_eq!(t.predict_into(&[0], &mut out), 0); // k = 0 writes nothing
    }

    #[test]
    fn binary_probe_agrees_with_linear_on_wide_nodes() {
        // Fan-out 20 at the root forces the binary-search arm.
        let raw: Vec<(Vec<u32>, u64)> = (0..20u32).map(|i| (vec![i], u64::from(i) + 1)).collect();
        let borrowed: Vec<(&[u32], u64)> = raw.iter().map(|(v, s)| (v.as_slice(), *s)).collect();
        let t = trie(&borrowed);
        for i in 0..20u32 {
            assert!(t.lookup(&[i]).is_some(), "id {i}");
        }
        assert!(t.lookup(&[20]).is_none());
        assert_eq!(
            t.predict(&[], 1),
            vec![Prediction {
                id: 19,
                support: 20
            }]
        );
    }
}
