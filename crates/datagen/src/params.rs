//! Generator parameters and the paper's named datasets.

/// All knobs of the synthetic generator. Field names mirror the paper's
/// notation (Table of parameters, §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// `|D|` — number of customers.
    pub num_customers: usize,
    /// `|C|` — average number of transactions per customer (Poisson mean).
    pub avg_transactions_per_customer: f64,
    /// `|T|` — average number of items per transaction (Poisson mean).
    pub avg_items_per_transaction: f64,
    /// `|S|` — average length of the potentially large sequences.
    pub avg_potential_sequence_length: f64,
    /// `|I|` — average size of the itemsets in potentially large sequences.
    pub avg_potential_itemset_size: f64,
    /// `N_S` — number of potentially large sequences (paper: 5 000).
    pub num_potential_sequences: usize,
    /// `N_I` — number of potentially large itemsets (paper: 25 000).
    pub num_potential_itemsets: usize,
    /// `N` — number of items (paper: 10 000).
    pub num_items: u32,
    /// Correlation between consecutive corpus entries: the mean of the
    /// exponentially distributed fraction of content carried over from the
    /// previous itemset/sequence (paper: 0.25).
    pub correlation: f64,
    /// Mean of the per-entry corruption level. Calibrated to 0.25 so the
    /// embedded sequential patterns reach the support range the paper
    /// mines (large sequences up to ~|S| elements at minsup 0.2-1%); see
    /// DESIGN.md §4 for the calibration note.
    pub corruption_mean: f64,
    /// Standard deviation of the corruption level (paper: 0.1).
    pub corruption_sd: f64,
}

impl Default for GenParams {
    /// The paper's most-used shape, `C10-T2.5-S4-I1.25`, at a laptop-scale
    /// default of 10 000 customers (the paper used 250 000 on an RS/6000;
    /// the algorithms are linear in `|D|`, see DESIGN.md §6).
    fn default() -> Self {
        Self {
            num_customers: 10_000,
            avg_transactions_per_customer: 10.0,
            avg_items_per_transaction: 2.5,
            avg_potential_sequence_length: 4.0,
            avg_potential_itemset_size: 1.25,
            num_potential_sequences: 5_000,
            num_potential_itemsets: 25_000,
            num_items: 10_000,
            correlation: 0.25,
            corruption_mean: 0.25,
            corruption_sd: 0.1,
        }
    }
}

impl GenParams {
    /// Builds the parameter set with the paper's `C/T/S/I` shape values.
    pub fn shape(c: f64, t: f64, s: f64, i: f64) -> Self {
        Self {
            avg_transactions_per_customer: c,
            avg_items_per_transaction: t,
            avg_potential_sequence_length: s,
            avg_potential_itemset_size: i,
            ..Self::default()
        }
    }

    /// Looks up one of the five datasets of the paper's evaluation by its
    /// printed name (e.g. `"C10-T5-S4-I2.5"`). Returns `None` for unknown
    /// names; [`paper_dataset_names`](Self::paper_dataset_names) lists them.
    pub fn paper_dataset(name: &str) -> Option<Self> {
        let (c, t, s, i) = match name {
            "C10-T2.5-S4-I1.25" => (10.0, 2.5, 4.0, 1.25),
            "C10-T5-S4-I1.25" => (10.0, 5.0, 4.0, 1.25),
            "C10-T5-S4-I2.5" => (10.0, 5.0, 4.0, 2.5),
            "C20-T2.5-S4-I1.25" => (20.0, 2.5, 4.0, 1.25),
            "C20-T2.5-S8-I1.25" => (20.0, 2.5, 8.0, 1.25),
            _ => return None,
        };
        Some(Self::shape(c, t, s, i))
    }

    /// The paper's five dataset names, in the order its tables list them.
    pub fn paper_dataset_names() -> [&'static str; 5] {
        [
            "C10-T2.5-S4-I1.25",
            "C10-T5-S4-I1.25",
            "C10-T5-S4-I2.5",
            "C20-T2.5-S4-I1.25",
            "C20-T2.5-S8-I1.25",
        ]
    }

    /// The `Cxx-Txx-Sxx-Ixx` label of this parameter set.
    pub fn label(&self) -> String {
        fn fmt(x: f64) -> String {
            if (x - x.round()).abs() < 1e-9 {
                format!("{}", x.round() as i64)
            } else {
                format!("{x}")
            }
        }
        format!(
            "C{}-T{}-S{}-I{}",
            fmt(self.avg_transactions_per_customer),
            fmt(self.avg_items_per_transaction),
            fmt(self.avg_potential_sequence_length),
            fmt(self.avg_potential_itemset_size),
        )
    }

    /// Sets the number of customers (builder style).
    pub fn customers(mut self, n: usize) -> Self {
        self.num_customers = n;
        self
    }

    /// Sets the item-universe size (builder style).
    pub fn items(mut self, n: u32) -> Self {
        self.num_items = n;
        self
    }

    /// Scales the corpus-table sizes (`N_S`, `N_I`) — useful for quick
    /// tests where the paper's 25 000-itemset corpus is overkill.
    pub fn corpus_size(mut self, sequences: usize, itemsets: usize) -> Self {
        self.num_potential_sequences = sequences;
        self.num_potential_itemsets = itemsets;
        self
    }

    /// Validates parameter sanity; called by the generator.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_items == 0 {
            return Err("num_items must be positive".into());
        }
        if self.avg_transactions_per_customer <= 0.0
            || self.avg_items_per_transaction <= 0.0
            || self.avg_potential_sequence_length <= 0.0
            || self.avg_potential_itemset_size <= 0.0
        {
            return Err("all shape averages must be positive".into());
        }
        if self.num_potential_itemsets == 0 || self.num_potential_sequences == 0 {
            return Err("corpus table sizes must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.correlation) {
            return Err("correlation must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.corruption_mean) || self.corruption_sd < 0.0 {
            return Err("corruption parameters out of range".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_notation() {
        for name in GenParams::paper_dataset_names() {
            let p = GenParams::paper_dataset(name).unwrap();
            assert_eq!(p.label(), name);
        }
    }

    #[test]
    fn unknown_dataset_is_none() {
        assert!(GenParams::paper_dataset("C99-T9-S9-I9").is_none());
    }

    #[test]
    fn builder_methods() {
        let p = GenParams::default()
            .customers(77)
            .items(123)
            .corpus_size(10, 20);
        assert_eq!(p.num_customers, 77);
        assert_eq!(p.num_items, 123);
        assert_eq!(p.num_potential_sequences, 10);
        assert_eq!(p.num_potential_itemsets, 20);
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(GenParams::default().validate().is_ok());
        assert!(GenParams::default().items(0).validate().is_err());
        let p = GenParams {
            correlation: 2.0,
            ..GenParams::default()
        };
        assert!(p.validate().is_err());
        let p2 = GenParams {
            avg_items_per_transaction: 0.0,
            ..GenParams::default()
        };
        assert!(p2.validate().is_err());
        let p3 = GenParams {
            num_potential_sequences: 0,
            ..GenParams::default()
        };
        assert!(p3.validate().is_err());
    }
}
