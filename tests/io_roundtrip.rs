//! Property tests for the I/O layer: SPMF and CSV round-trips on arbitrary
//! databases, and adversarial parser inputs.

use proptest::prelude::*;
use seqpat::io::{csv, spmf};
use seqpat::Database;

fn arb_database() -> impl Strategy<Value = Database> {
    let transaction = proptest::collection::vec(0u32..50, 1..=4);
    let customer = proptest::collection::vec(transaction, 1..=5);
    proptest::collection::vec(customer, 0..=8).prop_map(|customers| {
        let mut rows = Vec::new();
        for (c, transactions) in customers.into_iter().enumerate() {
            for (t, items) in transactions.into_iter().enumerate() {
                rows.push((c as u64, t as i64 * 3 + 1, items));
            }
        }
        Database::from_rows(rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip_is_identity(db in arb_database()) {
        let text = csv::write_string(&db);
        let again = csv::read_str(&text).expect("csv parse");
        prop_assert_eq!(db, again);
    }

    #[test]
    fn spmf_roundtrip_preserves_itemset_structure(db in arb_database()) {
        // SPMF drops customer ids and times but keeps itemsets and order.
        let text = spmf::write_string(&db);
        let again = spmf::read_str(&text).expect("spmf parse");
        prop_assert_eq!(db.num_customers(), again.num_customers());
        for (a, b) in db.customers().iter().zip(again.customers()) {
            let xs: Vec<Vec<u32>> = a
                .transactions
                .iter()
                .map(|t| t.items.items().to_vec())
                .collect();
            let ys: Vec<Vec<u32>> = b
                .transactions
                .iter()
                .map(|t| t.items.items().to_vec())
                .collect();
            prop_assert_eq!(xs, ys);
        }
    }

    #[test]
    fn double_roundtrip_is_stable(db in arb_database()) {
        let once = spmf::read_str(&spmf::write_string(&db)).expect("first");
        let twice = spmf::read_str(&spmf::write_string(&once)).expect("second");
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "[0-9 \\-\n]{0,200}") {
        // Any outcome is fine as long as it is a Result, not a panic.
        let _ = spmf::read_str(&text);
        let _ = csv::read_str(&text);
    }

    #[test]
    fn parser_never_panics_on_unicode_noise(text in "\\PC{0,100}") {
        let _ = spmf::read_str(&text);
        let _ = csv::read_str(&text);
    }
}

#[test]
fn spmf_rejects_malformed_inputs() {
    for bad in [
        "1 2 3",        // no terminators
        "1 -1",         // missing -2
        "-1 -2",        // empty itemset
        "1 -1 -2 junk", // trailing garbage
        "1 2 -2",       // itemset not closed
        "abc -1 -2",    // non-numeric
        "-3 -1 -2",     // negative item
    ] {
        assert!(spmf::read_str(bad).is_err(), "accepted {bad:?}");
    }
}

#[test]
fn csv_rejects_malformed_inputs() {
    for bad in [
        "1",       // missing fields
        "1,2",     // missing items
        "x,1,2",   // bad customer
        "1,y,2",   // bad time
        "1,1,a b", // bad item
        "1,1,",    // empty items
    ] {
        assert!(csv::read_str(bad).is_err(), "accepted {bad:?}");
    }
}
