//! GSP candidate generation (EDBT'96 §4.1.1).
//!
//! Pass `k` works over patterns with `k` **items**. The join: `s1` and `s2`
//! join when dropping the *first item of* `s1` yields the same
//! (item-)sequence as dropping the *last item of* `s2`; the candidate is
//! `s1` extended with `s2`'s last item — as a new trailing element when
//! that item formed its own element in `s2`, otherwise into `s1`'s last
//! element. Pass 2 is special-cased (joining the length-1 patterns through
//! the general rule would lose candidates like `⟨(x)(x)⟩`).
//!
//! The prune step drops a candidate when some delete-one-item subsequence
//! is infrequent. Under a **max-gap** constraint frequency is only
//! guaranteed for *contiguous* subsequences — deleting an item from the
//! first or last element, or from any element with ≥ 2 items (EDBT'96
//! §2) — so the prune restricts itself to those when `max_gap` is set.

use seqpat_core::Item;

/// A pattern as sorted item vectors per element.
pub type ItemSeq = Vec<Vec<Item>>;

/// Pass-2 candidates from the frequent items: every ordered pair as a
/// two-element sequence plus every unordered pair as a single element.
pub fn generate_k2(items: &[Item]) -> Vec<ItemSeq> {
    let mut out: Vec<ItemSeq> = Vec::with_capacity(items.len() * items.len());
    for &x in items {
        for &y in items {
            out.push(vec![vec![x], vec![y]]);
        }
    }
    for (i, &x) in items.iter().enumerate() {
        for &y in &items[i + 1..] {
            out.push(vec![vec![x, y]]);
        }
    }
    out.sort();
    out
}

/// General join + prune for pass `k ≥ 3`.
pub fn generate_next(prev: &[ItemSeq], max_gap_active: bool) -> Vec<ItemSeq> {
    // Index for the prune/join lookups.
    let mut sorted: Vec<&ItemSeq> = prev.iter().collect();
    sorted.sort();
    let is_frequent = |s: &ItemSeq| sorted.binary_search(&s).is_ok();

    // Join: group by drop-first == drop-last.
    let mut out: Vec<ItemSeq> = Vec::new();
    // Map drop_first(s1) -> candidates s1.
    let mut by_core: std::collections::BTreeMap<ItemSeq, Vec<&ItemSeq>> =
        std::collections::BTreeMap::new();
    for s in prev {
        by_core.entry(drop_first_item(s)).or_default().push(s);
    }
    for s2 in prev {
        let core = drop_last_item(s2);
        let Some(lefts) = by_core.get(&core) else {
            continue;
        };
        let (last_item, own_element) = last_item_info(s2);
        for &s1 in lefts {
            let Some(cand) = extend(s1, last_item, own_element) else {
                continue;
            };
            if survives_prune(&cand, &is_frequent, max_gap_active) {
                out.push(cand);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Drops the first item of the first element (removing the element when it
/// empties).
pub fn drop_first_item(s: &ItemSeq) -> ItemSeq {
    let mut out = s.clone();
    out[0].remove(0);
    if out[0].is_empty() {
        out.remove(0);
    }
    out
}

/// Drops the last item of the last element (removing the element when it
/// empties).
pub fn drop_last_item(s: &ItemSeq) -> ItemSeq {
    let mut out = s.clone();
    let last = out.len() - 1;
    out[last].pop();
    if out[last].is_empty() {
        out.remove(last);
    }
    out
}

/// The last item of `s` and whether it forms an element of its own.
fn last_item_info(s: &ItemSeq) -> (Item, bool) {
    let last = s.last().expect("non-empty sequence");
    (*last.last().expect("non-empty element"), last.len() == 1)
}

/// Appends `item` to `s1`: as a fresh element when `own_element`, else into
/// the last element (keeping it sorted; returns `None` when the item is
/// already present — such joins do not produce valid candidates).
fn extend(s1: &ItemSeq, item: Item, own_element: bool) -> Option<ItemSeq> {
    let mut out = s1.clone();
    if own_element {
        out.push(vec![item]);
    } else {
        let last = out.last_mut().expect("non-empty");
        match last.binary_search(&item) {
            Ok(_) => return None,
            Err(pos) => last.insert(pos, item),
        }
    }
    Some(out)
}

/// All delete-one-item subsequences, optionally restricted to the
/// contiguous ones (max-gap active).
pub fn delete_one_subsequences(s: &ItemSeq, contiguous_only: bool) -> Vec<ItemSeq> {
    let mut out = Vec::new();
    for (ei, element) in s.iter().enumerate() {
        let interior = ei != 0 && ei != s.len() - 1;
        if contiguous_only && interior && element.len() == 1 {
            // Deleting the only item of an interior element is not a
            // contiguous subsequence: skip.
            continue;
        }
        for drop in 0..element.len() {
            let mut sub = s.clone();
            sub[ei].remove(drop);
            if sub[ei].is_empty() {
                sub.remove(ei);
            }
            if !sub.is_empty() {
                out.push(sub);
            }
        }
    }
    out
}

fn survives_prune(
    cand: &ItemSeq,
    is_frequent: &impl Fn(&ItemSeq) -> bool,
    max_gap_active: bool,
) -> bool {
    delete_one_subsequences(cand, max_gap_active)
        .iter()
        .all(is_frequent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(v: &[&[Item]]) -> ItemSeq {
        v.iter().map(|e| e.to_vec()).collect()
    }

    #[test]
    fn k2_shapes() {
        let out = generate_k2(&[1, 2]);
        assert!(out.contains(&seq(&[&[1], &[2]])));
        assert!(out.contains(&seq(&[&[2], &[1]])));
        assert!(out.contains(&seq(&[&[1], &[1]])));
        assert!(out.contains(&seq(&[&[1, 2]])));
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn drop_first_and_last() {
        let s = seq(&[&[1, 2], &[3]]);
        assert_eq!(drop_first_item(&s), seq(&[&[2], &[3]]));
        assert_eq!(drop_last_item(&s), seq(&[&[1, 2]]));
        let single = seq(&[&[9]]);
        assert!(drop_first_item(&single).is_empty());
    }

    #[test]
    fn edbt_paper_join_example() {
        // EDBT'96 Example: L3 = {⟨(1 2)(3)⟩, ⟨(1 2)(4)⟩, ⟨(1)(3 4)⟩,
        // ⟨(1 3)(5)⟩, ⟨(2)(3 4)⟩, ⟨(2)(3)(5)⟩}. Join yields ⟨(1 2)(3 4)⟩
        // (from ⟨(1 2)(3)⟩ ⋈ ⟨(1)(3 4)⟩) and ⟨(1 2)(3)(5)⟩ (from
        // ⟨(1 2)(3)⟩ ⋈ ⟨(2)(3)(5)⟩); the prune then deletes ⟨(1 2)(3)(5)⟩
        // because ⟨(1)(3)(5)⟩ is not in L3. Result: {⟨(1 2)(3 4)⟩}.
        let prev = vec![
            seq(&[&[1, 2], &[3]]),
            seq(&[&[1, 2], &[4]]),
            seq(&[&[1], &[3, 4]]),
            seq(&[&[1, 3], &[5]]),
            seq(&[&[2], &[3, 4]]),
            seq(&[&[2], &[3], &[5]]),
        ];
        let out = generate_next(&prev, false);
        assert_eq!(out, vec![seq(&[&[1, 2], &[3, 4]])]);
    }

    #[test]
    fn contiguous_subsequences_respect_interior_singletons() {
        let s = seq(&[&[1], &[2], &[3]]);
        // Contiguous: drop 1 (first element) or 3 (last element); dropping
        // the interior singleton (2) is NOT contiguous.
        let contiguous = delete_one_subsequences(&s, true);
        assert_eq!(contiguous, vec![seq(&[&[2], &[3]]), seq(&[&[1], &[2]])]);
        let all = delete_one_subsequences(&s, false);
        assert_eq!(all.len(), 3);
        assert!(all.contains(&seq(&[&[1], &[3]])));
    }

    #[test]
    fn interior_elements_with_two_items_are_fair_game() {
        let s = seq(&[&[1], &[2, 3], &[4]]);
        let contiguous = delete_one_subsequences(&s, true);
        assert!(contiguous.contains(&seq(&[&[1], &[3], &[4]])));
        assert!(contiguous.contains(&seq(&[&[1], &[2], &[4]])));
    }

    #[test]
    fn extend_rejects_duplicate_item_in_element() {
        assert_eq!(extend(&seq(&[&[1, 2]]), 2, false), None);
        assert_eq!(extend(&seq(&[&[1]]), 2, false), Some(seq(&[&[1, 2]])));
        assert_eq!(extend(&seq(&[&[1]]), 1, true), Some(seq(&[&[1], &[1]])));
    }

    #[test]
    fn empty_prev_generates_nothing() {
        assert!(generate_next(&[], false).is_empty());
    }
}
