//! # seqpat-criterion-compat — offline stand-in for the `criterion` crate
//!
//! The build environment has no crates.io access, so the slice of the
//! `criterion 0.5` API used by `crates/bench/benches/*` is reimplemented
//! here and wired in under the dependency name `criterion`. Covered:
//! [`Criterion`], [`black_box`], [`BenchmarkId`], benchmark groups with
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are intentionally minimal: each benchmark runs a short
//! warm-up then `sample_size` timed iterations and reports
//! min/mean/p50/p99/max (nearest-rank percentiles).
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets) every body runs exactly once, untimed, so the tier-1
//! gate stays fast. Rigorous measurements in this workspace come from the
//! `seqpat-bench` harness binaries, not from these micro-benchmarks.
//!
//! Two CLI extensions beyond the criterion API surface:
//!
//! * **Substring filters** — positional arguments select benchmarks whose
//!   full label contains any of them (criterion's filter behaviour), so CI
//!   can smoke one fast cell per kernel family.
//! * **`--json PATH`** — after all groups run, a machine-readable summary
//!   (`{"results": [{"label", "mean_ns", "min_ns", "max_ns", "p50_ns",
//!   "p99_ns", "n"}]}`) is
//!   written to `PATH` for the tracked kernel-benchmark baseline
//!   (`results/bench_kernels.json`) and the `bench_compare.sh` gate.

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
// seqpat-lint: allow(no-wall-clock-outside-stats) this shim IS the timing harness; measuring wall clock is its entire purpose
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// One finished benchmark, queued for the `--json` report.
struct BenchRecord {
    label: String,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
    p50_ns: u128,
    p99_ns: u128,
    n: usize,
}

/// Results accumulated across every group of the run (benches execute on
/// the main thread; the mutex just satisfies `static` requirements).
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Process-wide CLI configuration, parsed once.
struct Config {
    test_mode: bool,
    json_path: Option<String>,
    filters: Vec<String>,
}

fn config() -> &'static Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let mut test_mode = false;
        let mut json_path = None;
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--test" {
                test_mode = true;
            } else if arg == "--json" {
                json_path = args.next();
            } else if !arg.starts_with('-') {
                filters.push(arg);
            }
            // Other flags (--bench, --nocapture, ...) are cargo harness
            // plumbing; ignore them like criterion does.
        }
        Config {
            test_mode,
            json_path,
            filters,
        }
    })
}

/// Entry point handed to each benchmark group function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: config().test_mode,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, DEFAULT_SAMPLE_SIZE, self.test_mode, f);
        self
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.criterion.test_mode, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.criterion.test_mode, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to each benchmark body; `iter` is the timed hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // One warm-up pass, then timed samples of a single call each.
        black_box(routine());
        for _ in 0..self.sample_size {
            // seqpat-lint: allow(no-wall-clock-outside-stats) the bench loop's sample timer is the harness's reason to exist
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, test_mode: bool, mut f: F) {
    let cfg = config();
    if !cfg.filters.is_empty() && !cfg.filters.iter().any(|needle| label.contains(needle)) {
        return;
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        test_mode,
    };
    f(&mut bencher);
    if test_mode {
        println!("test-mode {label}: ok");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let n = sorted.len();
    let min = sorted[0];
    let max = sorted[n - 1];
    let mean: Duration = sorted.iter().sum::<Duration>() / n as u32;
    // Nearest-rank percentiles over the sorted samples (matches
    // `seqpat_serve::stats::summarize`).
    let at = |q_num: usize, q_den: usize| sorted[(n * q_num).div_ceil(q_den).clamp(1, n) - 1];
    let p50 = at(50, 100);
    let p99 = at(99, 100);
    println!("{label}: mean {mean:?} (min {min:?}, p50 {p50:?}, p99 {p99:?}, max {max:?}, n={n})");
    let mut results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    results.push(BenchRecord {
        label: label.to_string(),
        mean_ns: mean.as_nanos(),
        min_ns: min.as_nanos(),
        max_ns: max.as_nanos(),
        p50_ns: p50.as_nanos(),
        p99_ns: p99.as_nanos(),
        n,
    });
}

/// Minimal JSON string escape (labels are plain ASCII identifiers, but a
/// stray quote must not corrupt the report).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes the accumulated results to the `--json` path, if one was given.
/// Called by [`criterion_main!`] after every group has run; a no-op
/// without the flag (and in `--test` mode, where nothing is recorded).
pub fn write_json_report() {
    let Some(path) = config().json_path.as_deref() else {
        return;
    };
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("{\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        // `p50_ns`/`p99_ns` sit after `max_ns` so bench_compare.sh's
        // label/mean_ns/min_ns field adjacency keeps working.
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"n\": {}}}{comma}\n",
            escape(&r.label),
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.p50_ns,
            r.p99_ns,
            r.n
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("criterion-compat: failed to write {path}: {e}");
    }
}

/// Bundles benchmark functions into one group runner, mirroring
/// criterion's simple (non-config) form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generates `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat_smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn group_api_runs_bodies() {
        let mut c = Criterion { test_mode: true };
        tiny_bench(&mut c);
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn escape_handles_quotes_and_backslashes() {
        assert_eq!(escape("plain/label_1"), "plain/label_1");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("algorithm", "apriori").to_string(),
            "algorithm/apriori"
        );
        assert_eq!(BenchmarkId::from_parameter(0.25).to_string(), "0.25");
    }
}
