//! A suppression whose named rule never fires on its lines.

// seqpat-lint: allow(nondeterministic-iteration-flow) seeded stale suppression — nothing below iterates a hash map
pub fn stable_order() -> u32 {
    7
}
